"""Long-horizon metrics for the living-cluster simulator.

Two concerns live here:

* :class:`DriftMonitor` — a rolling policy-drift detector.  The online
  rescheduler feeds it one objective sample per round (the fragment rate
  *after* applying the plan); the monitor compares a recent window against
  the preceding baseline window and raises a :class:`DriftEvent` when the
  policy's steady-state quality has degraded past a relative threshold.
  Retraining is pluggable: hooks registered with :meth:`DriftMonitor.add_hook`
  fire on every detection (a real deployment would enqueue a fine-tuning job
  on fresh snapshots; tests register a recorder).
* summary helpers — steady-state means over the tail of a run and plan
  invalidation rates, the numbers ``BENCH_churn_longrun.json`` records.

Everything is pure arithmetic over observed series — deterministic, no
clocks, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class DriftConfig:
    """Shape of the rolling drift test.

    Drift fires when ``mean(last window rounds)`` exceeds
    ``mean(previous baseline_window rounds) * (1 + threshold)``.  Higher
    objective = worse (fragment-rate semantics).  After a detection the
    monitor stays quiet for ``cooldown`` rounds so one sustained shift
    does not fire every round.
    """

    window: int = 8
    baseline_window: int = 24
    threshold: float = 0.15
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.window < 1 or self.baseline_window < 1:
            raise ValueError("window sizes must be >= 1")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must not be negative")


@dataclass(frozen=True)
class DriftEvent:
    """One drift detection: where, and how bad."""

    round_index: int
    recent_mean: float
    baseline_mean: float
    degradation: float

    def to_dict(self) -> Dict:
        return {
            "round_index": self.round_index,
            "recent_mean": self.recent_mean,
            "baseline_mean": self.baseline_mean,
            "degradation": self.degradation,
        }


class DriftMonitor:
    """Rolling window-vs-baseline drift detector with retraining hooks."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config if config is not None else DriftConfig()
        self.samples: List[float] = []
        self.events: List[DriftEvent] = []
        self._hooks: List[Callable[[DriftEvent], None]] = []
        self._quiet_until = 0

    def add_hook(self, hook: Callable[[DriftEvent], None]) -> None:
        """Register a callback fired on every detection (retraining trigger)."""
        self._hooks.append(hook)

    def observe(self, value: float) -> Optional[DriftEvent]:
        """Feed one per-round objective sample; returns a detection or None."""
        config = self.config
        self.samples.append(float(value))
        index = len(self.samples) - 1
        needed = config.window + config.baseline_window
        if len(self.samples) < needed or index < self._quiet_until:
            return None
        recent = self.samples[-config.window:]
        baseline = self.samples[-needed:-config.window]
        baseline_mean = sum(baseline) / len(baseline)
        recent_mean = sum(recent) / len(recent)
        scale = max(abs(baseline_mean), 1e-9)
        degradation = (recent_mean - baseline_mean) / scale
        if degradation <= config.threshold:
            return None
        event = DriftEvent(
            round_index=index,
            recent_mean=recent_mean,
            baseline_mean=baseline_mean,
            degradation=degradation,
        )
        self.events.append(event)
        self._quiet_until = index + 1 + config.cooldown
        for hook in self._hooks:
            hook(event)
        return event


# --------------------------------------------------------------------------- #
# Run summaries
# --------------------------------------------------------------------------- #
def steady_state_mean(series: Sequence[float], tail_fraction: float = 0.5) -> float:
    """Mean of the trailing ``tail_fraction`` of a series (warm-up excluded)."""
    if not series:
        return float("nan")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    start = min(len(series) - 1, int(len(series) * (1.0 - tail_fraction)))
    tail = series[start:]
    return float(sum(tail) / len(tail))


def invalidation_rate(planned: int, invalidated: int) -> float:
    """Fraction of planned migrations churn invalidated before application."""
    if planned <= 0:
        return 0.0
    return invalidated / planned
