"""Dataset persistence: JSON-lines mapping files plus metadata.

A dataset directory contains::

    metadata.json        # DatasetMetadata
    train.jsonl          # one mapping document per line
    validation.jsonl
    test.jsonl

Mappings round-trip through :class:`repro.cluster.ClusterState` via the schema
defined in :mod:`repro.datasets.schema`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..cluster import ClusterState
from .schema import DatasetMetadata, SchemaError, validate_mapping

SPLIT_FILES = {"train": "train.jsonl", "validation": "validation.jsonl", "test": "test.jsonl"}


def save_mappings(states: Sequence[ClusterState], path: str | Path) -> Path:
    """Write mapping snapshots to a JSON-lines file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for state in states:
            handle.write(json.dumps(state.to_dict(), sort_keys=True) + "\n")
    return path


def load_mappings(path: str | Path, limit: Optional[int] = None, validate: bool = True) -> List[ClusterState]:
    """Load mapping snapshots from a JSON-lines file."""
    path = Path(path)
    states: List[ClusterState] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if limit is not None and len(states) >= limit:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if validate:
                validate_mapping(payload)
            states.append(ClusterState.from_dict(payload))
    return states


def iter_mappings(path: str | Path, validate: bool = True) -> Iterator[ClusterState]:
    """Stream mapping snapshots from a JSON-lines file one at a time."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if validate:
                validate_mapping(payload)
            yield ClusterState.from_dict(payload)


class DatasetWriter:
    """Write a dataset directory (metadata plus per-split mapping files)."""

    def __init__(self, root: str | Path, metadata: DatasetMetadata) -> None:
        self.root = Path(root)
        self.metadata = metadata

    def write(self, splits: Dict[str, Sequence[ClusterState]]) -> Path:
        unknown = set(splits) - set(SPLIT_FILES)
        if unknown:
            raise ValueError(f"unknown split names: {sorted(unknown)}")
        self.root.mkdir(parents=True, exist_ok=True)
        split_sizes = {}
        for split, states in splits.items():
            save_mappings(states, self.root / SPLIT_FILES[split])
            split_sizes[split] = len(states)
        self.metadata.splits = split_sizes
        self.metadata.num_mappings = sum(split_sizes.values())
        with (self.root / "metadata.json").open("w", encoding="utf-8") as handle:
            json.dump(self.metadata.to_dict(), handle, indent=2, sort_keys=True)
        return self.root


class DatasetReader:
    """Read a dataset directory written by :class:`DatasetWriter`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        metadata_path = self.root / "metadata.json"
        if not metadata_path.exists():
            raise FileNotFoundError(f"no metadata.json under {self.root}")
        with metadata_path.open("r", encoding="utf-8") as handle:
            self.metadata = DatasetMetadata.from_dict(json.load(handle))

    def available_splits(self) -> List[str]:
        return [split for split, filename in SPLIT_FILES.items() if (self.root / filename).exists()]

    def load_split(self, split: str, limit: Optional[int] = None) -> List[ClusterState]:
        if split not in SPLIT_FILES:
            raise ValueError(f"unknown split {split!r}")
        path = self.root / SPLIT_FILES[split]
        if not path.exists():
            raise FileNotFoundError(f"split {split!r} not present under {self.root}")
        return load_mappings(path, limit=limit)

    def iter_split(self, split: str) -> Iterator[ClusterState]:
        path = self.root / SPLIT_FILES[split]
        if not path.exists():
            raise FileNotFoundError(f"split {split!r} not present under {self.root}")
        return iter_mappings(path)
