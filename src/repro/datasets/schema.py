"""Dataset schema for VM–PM mapping snapshots.

The paper's released datasets are collections of *mappings*: each mapping is a
snapshot of all VMs and PMs at the moment a VMR request is created (§4
"Datasets").  This module defines the on-disk JSON schema used by this
reproduction, validation helpers and the metadata describing a whole dataset
(name, cluster scale, workload level, split sizes).

A mapping document looks like::

    {
      "fragment_cores": 16,
      "pms": [{"pm_id": 0, "type": "pm-128c-512g", "cpu": 128, "memory": 512}, ...],
      "vms": [{"vm_id": 0, "type": "4xlarge", "cpu": 16, "memory": 32,
               "numa_count": 1, "pm_id": 3, "numa_id": 1,
               "anti_affinity_group": null}, ...]
    }

Datasets are stored as JSON-lines files (one mapping per line) next to a
``metadata.json`` describing the generator parameters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

SCHEMA_VERSION = 1

REQUIRED_PM_FIELDS = ("pm_id", "cpu", "memory")
REQUIRED_VM_FIELDS = ("vm_id", "cpu", "memory", "numa_count")


class SchemaError(ValueError):
    """Raised when a mapping document violates the dataset schema."""


@dataclass
class DatasetMetadata:
    """Describes one generated dataset (the paper's Medium/Large/... analogues)."""

    name: str
    num_mappings: int
    num_pms: int
    approx_num_vms: int
    workload_level: str = "high"
    fragment_cores: int = 16
    multi_resource: bool = False
    seed: int = 0
    schema_version: int = SCHEMA_VERSION
    splits: Dict[str, int] = field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "DatasetMetadata":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


def validate_mapping(mapping: Dict) -> None:
    """Validate a mapping document, raising :class:`SchemaError` on problems."""
    if not isinstance(mapping, dict):
        raise SchemaError("mapping must be a dict")
    for key in ("pms", "vms"):
        if key not in mapping or not isinstance(mapping[key], list):
            raise SchemaError(f"mapping is missing list field {key!r}")
    if not mapping["pms"]:
        raise SchemaError("mapping has no PMs")

    pm_ids = set()
    for pm in mapping["pms"]:
        for field_name in REQUIRED_PM_FIELDS:
            if field_name not in pm:
                raise SchemaError(f"PM entry missing field {field_name!r}: {pm}")
        if pm["cpu"] <= 0 or pm["memory"] <= 0:
            raise SchemaError(f"PM {pm['pm_id']} has non-positive capacity")
        if pm["pm_id"] in pm_ids:
            raise SchemaError(f"duplicate pm_id {pm['pm_id']}")
        pm_ids.add(pm["pm_id"])

    vm_ids = set()
    for vm in mapping["vms"]:
        for field_name in REQUIRED_VM_FIELDS:
            if field_name not in vm:
                raise SchemaError(f"VM entry missing field {field_name!r}: {vm}")
        if vm["cpu"] <= 0 or vm["memory"] <= 0:
            raise SchemaError(f"VM {vm['vm_id']} has non-positive request")
        if vm["numa_count"] not in (1, 2):
            raise SchemaError(f"VM {vm['vm_id']} has invalid numa_count {vm['numa_count']}")
        if vm["vm_id"] in vm_ids:
            raise SchemaError(f"duplicate vm_id {vm['vm_id']}")
        vm_ids.add(vm["vm_id"])
        placed = vm.get("pm_id") is not None
        if placed and vm["pm_id"] not in pm_ids:
            raise SchemaError(f"VM {vm['vm_id']} placed on unknown PM {vm['pm_id']}")
        if placed:
            numa_id = vm.get("numa_id")
            if vm["numa_count"] == 2 and numa_id not in (-1, None):
                raise SchemaError(f"double-NUMA VM {vm['vm_id']} must use numa_id -1")
            if vm["numa_count"] == 1 and numa_id not in (0, 1):
                raise SchemaError(f"single-NUMA VM {vm['vm_id']} must use numa_id 0 or 1")


def mapping_summary(mapping: Dict) -> Dict:
    """Small summary used in logs and dataset listings."""
    vms = mapping["vms"]
    pms = mapping["pms"]
    placed = sum(1 for vm in vms if vm.get("pm_id") is not None)
    total_vm_cpu = sum(vm["cpu"] for vm in vms if vm.get("pm_id") is not None)
    total_pm_cpu = sum(pm["cpu"] for pm in pms)
    return {
        "num_pms": len(pms),
        "num_vms": len(vms),
        "num_placed_vms": placed,
        "cpu_utilization": total_vm_cpu / total_pm_cpu if total_pm_cpu else 0.0,
    }
