"""Train / validation / test splitting and end-to-end dataset building.

The paper splits each dataset's 4400 mappings into 4000 train / 200 validation
/ 200 test (§4).  :func:`build_dataset` reproduces that pipeline at any scale:
generate snapshots with :class:`~repro.datasets.generator.SnapshotGenerator`,
split them, and persist them with :class:`~repro.datasets.loader.DatasetWriter`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import ClusterState
from .generator import ClusterSpec, SnapshotGenerator
from .loader import DatasetReader, DatasetWriter
from .schema import DatasetMetadata

#: The paper's split proportions (4000 / 200 / 200 out of 4400 mappings).
PAPER_SPLIT_FRACTIONS = {"train": 4000 / 4400, "validation": 200 / 4400, "test": 200 / 4400}


def split_mappings(
    states: Sequence[ClusterState],
    fractions: Optional[Dict[str, float]] = None,
    seed: int = 0,
    shuffle: bool = True,
) -> Dict[str, List[ClusterState]]:
    """Split snapshots into named subsets according to ``fractions``.

    Fractions must sum to 1 (within tolerance).  Remainder mappings after
    rounding are assigned to the training split.
    """
    fractions = dict(fractions or PAPER_SPLIT_FRACTIONS)
    total_fraction = sum(fractions.values())
    if abs(total_fraction - 1.0) > 1e-6:
        raise ValueError(f"split fractions must sum to 1, got {total_fraction}")
    if "train" not in fractions:
        raise ValueError("splits must include a 'train' entry")

    states = list(states)
    indices = np.arange(len(states))
    if shuffle:
        np.random.default_rng(seed).shuffle(indices)

    counts = {name: int(len(states) * fraction) for name, fraction in fractions.items()}
    assigned = sum(counts.values())
    counts["train"] += len(states) - assigned
    # Small datasets: make sure every requested split receives at least one
    # mapping (rounding the paper's 4000/200/200 fractions down would otherwise
    # leave validation/test empty), as long as the train split stays non-empty.
    for name in fractions:
        if name != "train" and counts[name] == 0 and counts["train"] > 1:
            counts[name] = 1
            counts["train"] -= 1

    splits: Dict[str, List[ClusterState]] = {}
    cursor = 0
    for name in fractions:
        size = counts[name]
        chosen = indices[cursor : cursor + size]
        splits[name] = [states[i] for i in chosen]
        cursor += size
    return splits


def build_dataset(
    spec: ClusterSpec,
    num_mappings: int,
    root: Optional[str | Path] = None,
    seed: int = 0,
    fractions: Optional[Dict[str, float]] = None,
    workload_level: str = "high",
    notes: str = "",
) -> Tuple[Dict[str, List[ClusterState]], Optional[Path]]:
    """Generate, split and (optionally) persist a dataset.

    Returns the in-memory splits and the directory written (``None`` when
    ``root`` is not given).
    """
    if num_mappings <= 0:
        raise ValueError("num_mappings must be positive")
    generator = SnapshotGenerator(spec, seed=seed)
    states = generator.generate_many(num_mappings)
    splits = split_mappings(states, fractions=fractions, seed=seed)

    written: Optional[Path] = None
    if root is not None:
        approx_vms = int(np.mean([state.num_vms for state in states])) if states else 0
        metadata = DatasetMetadata(
            name=spec.name,
            num_mappings=num_mappings,
            num_pms=spec.num_pms,
            approx_num_vms=approx_vms,
            workload_level=workload_level,
            fragment_cores=spec.fragment_cores,
            multi_resource=spec.multi_resource,
            seed=seed,
            notes=notes,
        )
        written = DatasetWriter(root, metadata).write(splits)
    return splits, written


def load_dataset(root: str | Path) -> Tuple[DatasetReader, Dict[str, List[ClusterState]]]:
    """Load every split of a dataset directory into memory."""
    reader = DatasetReader(root)
    splits = {split: reader.load_split(split) for split in reader.available_splits()}
    return reader, splits
