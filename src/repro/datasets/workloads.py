"""Workload levels and the Fig. 1 / Fig. 15 workload characterizations.

The paper defines "workload" as the percentage of CPU used on PMs and studies
three strictly non-overlapping levels (Fig. 15): Low, Middle and High, where
the main Medium dataset corresponds to the High workload.  Table 5 and Fig. 19
evaluate generalization across these levels.

This module maps workload levels to generator specs, produces the CPU-usage
CDF of Fig. 15 and the daily arrival/exit series of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster import ClusterState, sample_daily_changes
from .generator import ClusterSpec, SnapshotGenerator, get_spec

#: Target PM CPU-utilization bands for the three workload levels of Fig. 15.
#: The bands are strictly non-overlapping, matching the paper's statement that
#: no training sample of one level has a workload similar to another level.
WORKLOAD_BANDS: Dict[str, tuple] = {
    "low": (0.30, 0.45),
    "middle": (0.50, 0.65),
    "high": (0.70, 0.90),
}


@dataclass(frozen=True)
class WorkloadLevel:
    """A named workload level with its utilization band."""

    name: str
    min_utilization: float
    max_utilization: float

    @property
    def center(self) -> float:
        return 0.5 * (self.min_utilization + self.max_utilization)

    def contains(self, utilization: float) -> bool:
        return self.min_utilization <= utilization <= self.max_utilization


def get_workload_level(name: str) -> WorkloadLevel:
    key = name.lower()
    aliases = {"l": "low", "m": "middle", "medium": "middle", "mid": "middle", "h": "high"}
    key = aliases.get(key, key)
    if key not in WORKLOAD_BANDS:
        raise KeyError(f"unknown workload level {name!r}; known: {sorted(WORKLOAD_BANDS)}")
    low, high = WORKLOAD_BANDS[key]
    return WorkloadLevel(name=key, min_utilization=low, max_utilization=high)


def spec_for_workload(
    level: str, base: str = "small", **overrides
) -> ClusterSpec:
    """Return a cluster spec whose target utilization sits in the level's band."""
    workload = get_workload_level(level)
    spec = get_spec(base, **overrides)
    return replace(
        spec,
        name=f"{spec.name}-{workload.name}",
        target_utilization=workload.center,
        utilization_jitter=(workload.max_utilization - workload.min_utilization) / 6.0,
    )


def generate_workload_snapshots(
    level: str,
    count: int,
    base: str = "small",
    seed: int = 0,
    **overrides,
) -> List[ClusterState]:
    """Generate ``count`` snapshots at the requested workload level."""
    spec = spec_for_workload(level, base=base, **overrides)
    generator = SnapshotGenerator(spec, seed=seed)
    return generator.generate_many(count)


def cpu_usage_samples(states: Sequence[ClusterState]) -> np.ndarray:
    """Per-PM CPU usage across snapshots (the samples behind Fig. 15's CDF)."""
    usages: List[float] = []
    for state in states:
        for pm in state.pms.values():
            usages.append(pm.cpu_utilization)
    return np.asarray(usages, dtype=float)


def cpu_usage_cdf(states: Sequence[ClusterState], grid: Optional[np.ndarray] = None) -> Dict[str, np.ndarray]:
    """Empirical CDF of per-PM CPU usage (Fig. 15)."""
    samples = cpu_usage_samples(states)
    if grid is None:
        grid = np.linspace(0.0, 1.0, 101)
    if samples.size == 0:
        return {"cpu_usage": grid, "cdf": np.zeros_like(grid)}
    sorted_samples = np.sort(samples)
    cdf = np.searchsorted(sorted_samples, grid, side="right") / sorted_samples.size
    return {"cpu_usage": grid, "cdf": cdf}


def daily_arrival_exit_series(
    seed: int = 0,
    days: int = 30,
    peak_per_minute: float = 80.0,
    trough_per_minute: float = 6.0,
) -> Dict[str, np.ndarray]:
    """Average VM arrivals/exits per minute over ``days`` days (Fig. 1).

    Returns the per-minute mean arrival, exit and total-change counts along
    with the minute index, mirroring the series plotted by the paper.
    """
    if days <= 0:
        raise ValueError("days must be positive")
    rng = np.random.default_rng(seed)
    arrival_stack = []
    exit_stack = []
    for _ in range(days):
        day = sample_daily_changes(rng, peak_per_minute, trough_per_minute)
        arrival_stack.append(day["arrivals"])
        exit_stack.append(day["exits"])
    arrivals = np.mean(arrival_stack, axis=0)
    exits = np.mean(exit_stack, axis=0)
    return {
        "minute": np.arange(arrivals.size),
        "arrivals": arrivals,
        "exits": exits,
        "total": arrivals + exits,
    }


def offpeak_minute(series: Dict[str, np.ndarray]) -> int:
    """The minute of the day with the fewest VM changes (when VMR runs)."""
    return int(np.argmin(series["total"]))


# --------------------------------------------------------------------------- #
# Workload families for the living-cluster simulator (repro.sim)
# --------------------------------------------------------------------------- #
#: Synthetic churn families the trace-driven simulator supports.
WORKLOAD_FAMILIES = ("diurnal", "flash_crowd", "abnormal")


def flash_crowd_rate_profile(
    base_per_minute: float = 6.0,
    spike_per_minute: float = 120.0,
    spike_minutes: Sequence[int] = (11 * 60, 20 * 60),
    spike_width_min: float = 20.0,
) -> np.ndarray:
    """Per-minute change rate for a flash-crowd day: calm baseline + spikes.

    Each entry of ``spike_minutes`` is the center of a Gaussian burst of
    arrivals (a product launch, a breaking-news surge) whose peak adds
    ``spike_per_minute - base_per_minute`` on top of the flat baseline.
    """
    if spike_per_minute <= base_per_minute:
        raise ValueError("spike rate must exceed the baseline rate")
    if spike_width_min <= 0:
        raise ValueError("spike_width_min must be positive")
    minutes = np.arange(24 * 60)
    rates = np.full(24 * 60, float(base_per_minute))
    for center in spike_minutes:
        bump = np.exp(-0.5 * ((minutes - float(center)) / spike_width_min) ** 2)
        rates += (spike_per_minute - base_per_minute) * bump
    return rates


def abnormal_rate_profile(
    rng: np.random.Generator,
    low_per_minute: float = 3.0,
    high_per_minute: float = 60.0,
    segment_minutes: int = 90,
) -> np.ndarray:
    """Per-minute change rate for an abnormal day: regime-switching bursts.

    The day is cut into ``segment_minutes`` segments, each drawing its own
    rate log-uniformly between the low and high levels — the "abnormal
    workload" analogue of Table 5, where the mix looks nothing like the
    diurnal training distribution.  Deterministic given ``rng``.
    """
    if low_per_minute <= 0 or high_per_minute <= low_per_minute:
        raise ValueError("need 0 < low_per_minute < high_per_minute")
    if segment_minutes <= 0:
        raise ValueError("segment_minutes must be positive")
    num_segments = -(-(24 * 60) // segment_minutes)
    levels = np.exp(
        rng.uniform(np.log(low_per_minute), np.log(high_per_minute), size=num_segments)
    )
    return np.repeat(levels, segment_minutes)[: 24 * 60]


def family_rate_profile(
    family: str,
    rng: np.random.Generator,
    peak_per_minute: float = 80.0,
    trough_per_minute: float = 6.0,
) -> np.ndarray:
    """One day's per-minute change rates for a named workload family.

    ``diurnal`` is the Fig. 1 raised cosine; ``flash_crowd`` is a calm
    baseline with sharp bursts; ``abnormal`` switches regimes every ~90
    minutes.  Only ``abnormal`` (regime draws) and ``flash_crowd`` (spike
    centers) consume randomness, so the stream stays reproducible per day.
    """
    from ..cluster import diurnal_rate_profile

    key = family.lower().replace("-", "_")
    if key == "diurnal":
        return diurnal_rate_profile(peak_per_minute, trough_per_minute)
    if key == "flash_crowd":
        centers = rng.integers(0, 24 * 60, size=2)
        return flash_crowd_rate_profile(
            base_per_minute=trough_per_minute,
            spike_per_minute=max(peak_per_minute, trough_per_minute * 1.5 + 1.0),
            spike_minutes=[int(c) for c in centers],
        )
    if key == "abnormal":
        return abnormal_rate_profile(
            rng,
            low_per_minute=max(trough_per_minute / 2.0, 1e-3),
            high_per_minute=max(peak_per_minute, trough_per_minute + 1e-3),
        )
    raise KeyError(f"unknown workload family {family!r}; known: {WORKLOAD_FAMILIES}")
