"""Synthetic cluster-snapshot generator.

The paper evaluates on anonymized snapshots of production clusters (Medium,
Large, Multi-Resource, plus Low/Mid/High workload variants).  Those traces are
not redistributable here, so this generator synthesizes mappings with the same
structural properties the rescheduling algorithms interact with:

* the VM-type mix of Table 1 (small VMs far more common than large ones),
* two NUMA nodes per PM with per-NUMA capacity accounting,
* a target CPU utilization ("workload" in the paper's terminology, Fig. 15),
* realistic fragmentation produced by placing VMs with a mixture of best-fit
  and random-fit followed by random departures (the mechanism the paper
  describes: continual creation and release of VMs leaves scattered holes),
* optional Multi-Resource PM/VM types (§5.4) and anti-affinity groups.

Cluster-scale presets mirror the paper's datasets, plus a ``small`` preset used
by the test-suite and the default benchmark scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import (
    BOTH_NUMAS,
    ClusterState,
    PhysicalMachine,
    Placement,
    VirtualMachine,
    VMTypeCatalog,
    assign_anti_affinity_groups,
    best_fit_placement,
)
from ..cluster.vm_types import (
    DEFAULT_PM_TYPE,
    MULTI_RESOURCE_PM_TYPES,
    PMType,
    VMType,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters controlling synthetic snapshot generation."""

    name: str = "small"
    num_pms: int = 24
    pm_types: Tuple[PMType, ...] = (DEFAULT_PM_TYPE,)
    pm_type_weights: Tuple[float, ...] = (1.0,)
    target_utilization: float = 0.75
    utilization_jitter: float = 0.03
    multi_resource: bool = False
    fragment_cores: int = 16
    #: fraction of placements made with best-fit (rest are random-fit); a lower
    #: value produces more fragmentation in the initial mapping.
    best_fit_fraction: float = 0.5
    #: fraction of placed VMs removed again to carve release-holes.
    churn_fraction: float = 0.25
    #: anti-affinity synthesis: number of groups and members per group.
    affinity_groups: int = 0
    affinity_group_size: int = 0

    def __post_init__(self) -> None:
        if self.num_pms <= 0:
            raise ValueError("num_pms must be positive")
        if not 0.0 < self.target_utilization < 1.0:
            raise ValueError("target_utilization must be in (0, 1)")
        if len(self.pm_types) != len(self.pm_type_weights):
            raise ValueError("pm_types and pm_type_weights must have equal length")
        if not 0.0 <= self.best_fit_fraction <= 1.0:
            raise ValueError("best_fit_fraction must be in [0, 1]")
        if not 0.0 <= self.churn_fraction < 1.0:
            raise ValueError("churn_fraction must be in [0, 1)")


#: VM-type sampling weights: smaller flavors dominate real clusters (§1).
DEFAULT_VM_TYPE_WEIGHTS: Dict[str, float] = {
    "large": 0.26,
    "xlarge": 0.26,
    "2xlarge": 0.20,
    "4xlarge": 0.16,
    "8xlarge": 0.07,
    "16xlarge": 0.04,
    "22xlarge": 0.01,
}

MULTI_RESOURCE_EXTRA_WEIGHTS: Dict[str, float] = {
    "large-mem4": 0.05,
    "large-mem8": 0.03,
    "xlarge-mem4": 0.05,
    "xlarge-mem8": 0.03,
    "2xlarge-mem4": 0.04,
    "4xlarge-mem4": 0.03,
    "8xlarge-mem4": 0.02,
}


# --------------------------------------------------------------------------- #
# Presets mirroring the paper's datasets (plus a reduced "small" preset)
# --------------------------------------------------------------------------- #
def small_spec(target_utilization: float = 0.75) -> ClusterSpec:
    """Reduced-scale cluster used by tests and default benchmark runs."""
    return ClusterSpec(name="small", num_pms=24, target_utilization=target_utilization)


def medium_spec(target_utilization: float = 0.78) -> ClusterSpec:
    """The paper's Medium dataset scale: 280 PMs, ~2089 VMs."""
    return ClusterSpec(name="medium", num_pms=280, target_utilization=target_utilization)


def large_spec(target_utilization: float = 0.70) -> ClusterSpec:
    """The paper's Large dataset scale: 1176 PMs, ~4546 VMs (larger average VMs)."""
    return ClusterSpec(name="large", num_pms=1176, target_utilization=target_utilization)


def multi_resource_spec(num_pms: int = 20, target_utilization: float = 0.72) -> ClusterSpec:
    """The §5.4 Multi-Resource cluster: two PM types and memory-boosted VM types."""
    return ClusterSpec(
        name="multi_resource",
        num_pms=num_pms,
        pm_types=MULTI_RESOURCE_PM_TYPES,
        pm_type_weights=(0.6, 0.4),
        target_utilization=target_utilization,
        multi_resource=True,
    )


PRESETS = {
    "small": small_spec,
    "medium": medium_spec,
    "large": large_spec,
    "multi_resource": multi_resource_spec,
}


def get_spec(name: str, **overrides) -> ClusterSpec:
    """Look up a preset spec by name, applying field overrides.

    Overrides may name any :class:`ClusterSpec` field (e.g. ``num_pms`` or
    ``target_utilization``); unknown fields raise ``TypeError`` via
    ``dataclasses.replace``.
    """
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown cluster preset {name!r}; known presets: {sorted(PRESETS)}")
    spec = factory()
    if overrides:
        spec = replace(spec, **overrides)
    return spec


class SnapshotGenerator:
    """Generate :class:`ClusterState` snapshots according to a :class:`ClusterSpec`."""

    def __init__(self, spec: ClusterSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        if spec.multi_resource:
            self.catalog = VMTypeCatalog.multi_resource()
            weights = dict(DEFAULT_VM_TYPE_WEIGHTS)
            weights.update(MULTI_RESOURCE_EXTRA_WEIGHTS)
        else:
            self.catalog = VMTypeCatalog.main()
            weights = dict(DEFAULT_VM_TYPE_WEIGHTS)
        self._vm_types = [self.catalog.get(name) for name in weights if name in self.catalog]
        probs = np.array([weights[t.name] for t in self._vm_types], dtype=float)
        self._vm_type_probs = probs / probs.sum()

    # ------------------------------------------------------------------ #
    def generate(self, rng: Optional[np.random.Generator] = None) -> ClusterState:
        """Generate one snapshot (one "mapping" in the paper's terminology)."""
        rng = rng if rng is not None else self._rng
        spec = self.spec
        pms = self._build_pms(rng)
        state = ClusterState(pms=pms, vms=[], fragment_cores=spec.fragment_cores)

        utilization = float(
            np.clip(
                rng.normal(spec.target_utilization, spec.utilization_jitter),
                0.05,
                0.97,
            )
        )
        total_cpu = sum(pm.cpu_capacity for pm in pms)
        # Overshoot the CPU target so that post-churn utilization lands near it.
        target_cpu = utilization * total_cpu / (1.0 - spec.churn_fraction)

        next_vm_id = 0
        placed_cpu = 0.0
        failures = 0
        while placed_cpu < target_cpu and failures < 50:
            vm_type = self._sample_vm_type(rng)
            vm = VirtualMachine(vm_id=next_vm_id, vm_type=vm_type)
            placement = self._choose_placement(state, vm, rng)
            if placement is None:
                failures += 1
                continue
            state.add_vm(vm, placement)
            placed_cpu += vm_type.cpu
            next_vm_id += 1
            failures = 0

        self._apply_churn(state, rng)

        if spec.affinity_groups > 0 and spec.affinity_group_size >= 2:
            assign_anti_affinity_groups(
                state, spec.affinity_groups, spec.affinity_group_size, rng
            )
        return state

    def generate_many(self, count: int) -> List[ClusterState]:
        """Generate ``count`` independent snapshots."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------ #
    def _build_pms(self, rng: np.random.Generator) -> List[PhysicalMachine]:
        spec = self.spec
        weights = np.array(spec.pm_type_weights, dtype=float)
        weights = weights / weights.sum()
        type_indices = rng.choice(len(spec.pm_types), size=spec.num_pms, p=weights)
        return [
            PhysicalMachine(pm_id=pm_id, pm_type=spec.pm_types[type_index])
            for pm_id, type_index in enumerate(type_indices)
        ]

    def _sample_vm_type(self, rng: np.random.Generator) -> VMType:
        index = rng.choice(len(self._vm_types), p=self._vm_type_probs)
        return self._vm_types[index]

    def _choose_placement(
        self, state: ClusterState, vm: VirtualMachine, rng: np.random.Generator
    ) -> Optional[Placement]:
        """Mix best-fit (production VMS) and random-fit placements."""
        if rng.random() < self.spec.best_fit_fraction:
            return best_fit_placement(state, vm)
        # Random fit: pick a random feasible (PM, NUMA) pair.
        with state.probe_vm(vm):
            candidates: List[Placement] = []
            for pm_id in state.pms:
                for numa_id in state.feasible_numas(vm.vm_id, pm_id):
                    candidates.append(Placement(pm_id=pm_id, numa_id=numa_id))
        if not candidates:
            return None
        return candidates[rng.integers(len(candidates))]

    def _apply_churn(self, state: ClusterState, rng: np.random.Generator) -> None:
        """Remove a fraction of VMs to carve the release-holes VMR must repair."""
        if self.spec.churn_fraction <= 0:
            return
        placed = state.placed_vm_ids()
        num_remove = int(len(placed) * self.spec.churn_fraction)
        if num_remove == 0:
            return
        to_remove = rng.choice(placed, size=num_remove, replace=False)
        for vm_id in to_remove:
            state.remove_vm_from_cluster(int(vm_id))
