"""Dataset substrate: synthetic trace generation, workload levels and persistence.

The paper evaluates on anonymized production snapshots (Medium / Large /
Multi-Resource, plus Low/Middle/High workload variants).  This subpackage
substitutes a calibrated synthetic generator (see DESIGN.md for the
substitution rationale) and provides the same dataset mechanics the paper
describes: 4000/200/200 train/validation/test splits of mapping snapshots,
stored as JSON-lines files.
"""

from .generator import (
    ClusterSpec,
    DEFAULT_VM_TYPE_WEIGHTS,
    PRESETS,
    SnapshotGenerator,
    get_spec,
    large_spec,
    medium_spec,
    multi_resource_spec,
    small_spec,
)
from .loader import (
    DatasetReader,
    DatasetWriter,
    iter_mappings,
    load_mappings,
    save_mappings,
)
from .schema import DatasetMetadata, SchemaError, mapping_summary, validate_mapping
from .splits import PAPER_SPLIT_FRACTIONS, build_dataset, load_dataset, split_mappings
from .workloads import (
    WORKLOAD_BANDS,
    WORKLOAD_FAMILIES,
    WorkloadLevel,
    abnormal_rate_profile,
    cpu_usage_cdf,
    cpu_usage_samples,
    daily_arrival_exit_series,
    family_rate_profile,
    flash_crowd_rate_profile,
    generate_workload_snapshots,
    get_workload_level,
    offpeak_minute,
    spec_for_workload,
)

__all__ = [
    "ClusterSpec",
    "DEFAULT_VM_TYPE_WEIGHTS",
    "DatasetMetadata",
    "DatasetReader",
    "DatasetWriter",
    "PAPER_SPLIT_FRACTIONS",
    "PRESETS",
    "SchemaError",
    "SnapshotGenerator",
    "WORKLOAD_BANDS",
    "WORKLOAD_FAMILIES",
    "WorkloadLevel",
    "abnormal_rate_profile",
    "build_dataset",
    "cpu_usage_cdf",
    "cpu_usage_samples",
    "daily_arrival_exit_series",
    "family_rate_profile",
    "flash_crowd_rate_profile",
    "generate_workload_snapshots",
    "get_spec",
    "get_workload_level",
    "iter_mappings",
    "large_spec",
    "load_dataset",
    "load_mappings",
    "mapping_summary",
    "medium_spec",
    "multi_resource_spec",
    "offpeak_minute",
    "save_mappings",
    "small_spec",
    "spec_for_workload",
    "split_mappings",
    "validate_mapping",
]
