"""Tests for the multi-process AsyncVectorEnv and its shared-memory transport.

Factories are built with :func:`functools.partial` over module-level
callables so they stay picklable under the ``spawn`` start method — the same
constraint real training code obeys.
"""

from functools import partial

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import (
    AsyncVectorEnv,
    AsyncVectorEnvError,
    SharedObservationBuffers,
    SyncVectorEnv,
    VMRescheduleEnv,
    VectorEnv,
)


@pytest.fixture(scope="module")
def snapshot():
    spec = ClusterSpec(name="async", num_pms=6, target_utilization=0.72, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=11).generate()


@pytest.fixture(scope="module")
def small_snapshot():
    spec = ClusterSpec(name="async-small", num_pms=5, target_utilization=0.6, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=3).generate()


def factories(snapshot, count, migration_limit=4):
    config = ConstraintConfig(migration_limit=migration_limit)
    return [partial(VMRescheduleEnv, snapshot.copy(), config) for _ in range(count)]


def assert_observations_equal(lhs, rhs):
    np.testing.assert_array_equal(lhs.pm_features, rhs.pm_features)
    np.testing.assert_array_equal(lhs.vm_features, rhs.vm_features)
    np.testing.assert_array_equal(lhs.vm_source_pm, rhs.vm_source_pm)
    np.testing.assert_array_equal(lhs.vm_mask, rhs.vm_mask)
    assert lhs.vm_ids == rhs.vm_ids
    assert lhs.pm_ids == rhs.pm_ids
    assert lhs.migrations_left == rhs.migrations_left


def first_actions(observations):
    """One deterministic legal action per env (first movable VM, first legal PM)."""
    actions = []
    for obs in observations:
        vm_index = int(np.flatnonzero(obs.vm_mask)[0])
        actions.append((vm_index, None))
    return actions


class TestProtocol:
    def test_both_backends_are_vector_envs(self, snapshot):
        sync = SyncVectorEnv(factories(snapshot, 2))
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        try:
            assert isinstance(sync, VectorEnv)
            assert isinstance(venv, VectorEnv)
        finally:
            venv.close()
            sync.close()

    def test_empty_factories_rejected(self):
        with pytest.raises(ValueError):
            AsyncVectorEnv([])

    def test_bad_worker_count_rejected(self, snapshot):
        with pytest.raises(ValueError):
            AsyncVectorEnv(factories(snapshot, 2), num_workers=0)


class TestResetStepParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_reset_matches_sync(self, snapshot, num_workers):
        sync = SyncVectorEnv(factories(snapshot, 3))
        venv = AsyncVectorEnv(factories(snapshot, 3), num_workers=num_workers)
        try:
            for sync_obs, async_obs in zip(sync.reset(), venv.reset()):
                assert_observations_equal(sync_obs, async_obs)
        finally:
            venv.close()
            sync.close()

    def test_step_matches_sync(self, snapshot):
        sync = SyncVectorEnv(factories(snapshot, 2))
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        try:
            sync_obs, async_obs = sync.reset(), venv.reset()
            for _ in range(3):
                actions = []
                for index, obs in enumerate(sync_obs):
                    vm_index = int(np.flatnonzero(obs.vm_mask)[0])
                    pm_index = int(
                        np.flatnonzero(sync.pm_action_mask(index, vm_index))[0]
                    )
                    actions.append((vm_index, pm_index))
                sync_obs, s_rewards, s_dones, s_infos = sync.step(actions)
                async_obs, a_rewards, a_dones, a_infos = venv.step(actions)
                np.testing.assert_array_equal(s_rewards, a_rewards)
                np.testing.assert_array_equal(s_dones, a_dones)
                for lhs, rhs in zip(sync_obs, async_obs):
                    assert_observations_equal(lhs, rhs)
                for s_info, a_info in zip(s_infos, a_infos):
                    assert s_info["fragment_rate"] == a_info["fragment_rate"]
                    assert s_info["steps_taken"] == a_info["steps_taken"]
        finally:
            venv.close()
            sync.close()

    def test_auto_reset_reports_terminal_observation(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 1, migration_limit=1), num_workers=1)
        try:
            observations = venv.reset()
            vm_index = int(np.flatnonzero(observations[0].vm_mask)[0])
            pm_index = int(np.flatnonzero(venv.pm_action_mask(0, vm_index))[0])
            next_obs, _, dones, infos = venv.step([(vm_index, pm_index)])
            assert dones[0]
            # The returned observation is the NEXT episode's first one...
            assert next_obs[0].migrations_left == 1
            # ...and the terminal observation rides along in the info dict.
            terminal = infos[0]["terminal_observation"]
            assert terminal.migrations_left == 0
        finally:
            venv.close()

    def test_wrong_action_count_rejected(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=1)
        try:
            venv.reset()
            with pytest.raises(ValueError):
                venv.step([(0, 0)])
        finally:
            venv.close()


class TestMasksAndCalls:
    def test_pm_action_masks_match_sync(self, snapshot):
        sync = SyncVectorEnv(factories(snapshot, 3))
        venv = AsyncVectorEnv(factories(snapshot, 3), num_workers=2)
        try:
            observations = sync.reset()
            venv.reset()
            vm_indices = [int(np.flatnonzero(obs.vm_mask)[0]) for obs in observations]
            np.testing.assert_array_equal(
                sync.pm_action_masks(vm_indices), venv.pm_action_masks(vm_indices)
            )
            np.testing.assert_array_equal(
                sync.pm_action_mask(1, vm_indices[1]), venv.pm_action_mask(1, vm_indices[1])
            )
        finally:
            venv.close()
            sync.close()

    def test_joint_action_masks_match_sync(self, snapshot):
        sync = SyncVectorEnv(factories(snapshot, 2))
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        try:
            sync.reset()
            venv.reset()
            for lhs, rhs in zip(sync.joint_action_masks(), venv.joint_action_masks()):
                np.testing.assert_array_equal(lhs, rhs)
        finally:
            venv.close()
            sync.close()

    def test_call_collects_from_every_env(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 3), num_workers=2)
        try:
            venv.reset()
            rates = venv.call("fragment_rate")
            assert len(rates) == 3
            assert len(set(rates)) == 1  # identical snapshots
        finally:
            venv.close()


class TestLifecycleAndErrors:
    def test_worker_error_propagates_with_traceback(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        try:
            venv.reset()
            with pytest.raises(AsyncVectorEnvError) as excinfo:
                venv.step([(10 ** 6, 0)] * 2)  # out-of-range vm_index
            assert "IndexError" in str(excinfo.value)
            assert "worker" in str(excinfo.value)
        finally:
            venv.close()

    def test_close_is_idempotent_and_rejects_use(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        venv.reset()
        venv.close()
        venv.close()
        with pytest.raises(RuntimeError):
            venv.reset()

    def test_context_manager_closes(self, snapshot):
        with AsyncVectorEnv(factories(snapshot, 2), num_workers=2) as venv:
            venv.reset()
        with pytest.raises(RuntimeError):
            venv.reset()

    def test_capacity_overflow_is_actionable(self, snapshot, small_snapshot):
        # Buffers sized from the small probe env; the bigger env cannot fit.
        config = ConstraintConfig(migration_limit=3)
        fns = [
            partial(VMRescheduleEnv, small_snapshot.copy(), config),
            partial(VMRescheduleEnv, snapshot.copy(), config),
        ]
        venv = AsyncVectorEnv(fns, num_workers=2)
        try:
            with pytest.raises(AsyncVectorEnvError) as excinfo:
                venv.reset()
            assert "max_pms/max_vms" in str(excinfo.value)
        finally:
            venv.close()

    def test_mixed_sizes_fit_with_explicit_capacity(self, snapshot, small_snapshot):
        config = ConstraintConfig(migration_limit=3)
        fns = [
            partial(VMRescheduleEnv, small_snapshot.copy(), config),
            partial(VMRescheduleEnv, snapshot.copy(), config),
        ]
        venv = AsyncVectorEnv(
            fns,
            num_workers=2,
            max_pms=max(small_snapshot.num_pms, snapshot.num_pms),
            max_vms=max(small_snapshot.num_vms, snapshot.num_vms),
        )
        try:
            observations = venv.reset()
            assert observations[0].num_vms == small_snapshot.num_vms
            assert observations[1].num_vms == snapshot.num_vms
        finally:
            venv.close()


class TestSeedingDeterminism:
    def test_seed_reaches_each_env(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 3), num_workers=2, seed=123)
        try:
            venv.reset()
            # env.rng is seeded with seed + env_index: identical envs seeded
            # identically must produce identical generator draws per slot.
            draws = venv.get_attr("rng")  # generators come back pickled
            values = [rng.integers(1 << 30) for rng in draws]
            expected = [
                np.random.default_rng(123 + index).integers(1 << 30)
                for index in range(3)
            ]
            assert values == expected
        finally:
            venv.close()

    def test_reseed_via_protocol(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2)
        try:
            venv.reset()
            venv.seed(7)
            draws = [rng.integers(1 << 30) for rng in venv.get_attr("rng")]
            expected = [
                np.random.default_rng(7 + index).integers(1 << 30) for index in range(2)
            ]
            assert draws == expected
        finally:
            venv.close()


class TestSpawnStartMethod:
    """What macOS/Windows would run: factories and buffers must pickle."""

    def test_spawn_reset_matches_fork(self, snapshot):
        fork_env = AsyncVectorEnv(factories(snapshot, 2), num_workers=2, start_method="fork")
        spawn_env = AsyncVectorEnv(factories(snapshot, 2), num_workers=2, start_method="spawn")
        try:
            for lhs, rhs in zip(fork_env.reset(), spawn_env.reset()):
                assert_observations_equal(lhs, rhs)
        finally:
            spawn_env.close()
            fork_env.close()


class TestSharedObservationBuffers:
    def test_round_trip_preserves_observation(self, snapshot):
        env = VMRescheduleEnv(snapshot.copy(), ConstraintConfig(migration_limit=4))
        observation = env.reset()
        buffers = SharedObservationBuffers(2, observation.num_pms, observation.num_vms)
        buffers.write_observation(1, observation)
        assert_observations_equal(observation, buffers.read_observation(1))

    def test_reads_are_copies(self, snapshot):
        env = VMRescheduleEnv(snapshot.copy(), ConstraintConfig(migration_limit=4))
        observation = env.reset()
        buffers = SharedObservationBuffers(1, observation.num_pms, observation.num_vms)
        buffers.write_observation(0, observation)
        first = buffers.read_observation(0)
        buffers.views["pm_features"][0] = -1.0
        assert (first.pm_features != -1.0).any()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            SharedObservationBuffers(0, 4, 4)
        with pytest.raises(ValueError):
            SharedObservationBuffers(1, 0, 4)

    def test_zero_vm_capacity_views_work(self):
        buffers = SharedObservationBuffers(2, 4, 0)
        assert buffers.views["vm_features"].shape == (2, 0, 14)
        assert buffers.views["pm_features"].shape == (2, 4, 8)
        rewards, dones = buffers.read_steps()
        assert rewards.shape == (2,) and dones.shape == (2,)
