"""Read-only shared model weights: attach semantics and cross-process fidelity."""

import multiprocessing

import numpy as np
import pytest

from repro.env.shared_memory import SharedModuleWeights
from repro.nn import MLP, tensor


def make_model(seed=0):
    return MLP(5, [8], 3, rng=np.random.default_rng(seed))


def _forward(model, inputs):
    return np.asarray(model(tensor(inputs)).data)


def _child_forward(weights, inputs, seed, queue):
    model = make_model(seed=seed)
    weights.attach(model)
    queue.put(_forward(model, inputs))


class TestSharedModuleWeights:
    def test_attach_matches_source_forward(self):
        source = make_model(seed=1)
        weights = SharedModuleWeights.from_module(source)
        clone = make_model(seed=2)
        weights.attach(clone)
        x = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(_forward(clone, x), _forward(source, x))

    def test_attached_params_are_read_only_views(self):
        source = make_model(seed=1)
        weights = SharedModuleWeights.from_module(source)
        clone = make_model(seed=2)
        weights.attach(clone)
        for param in clone.parameters():
            assert not param.data.flags.writeable
            with pytest.raises(ValueError):
                param.data[...] = 0.0

    def test_attach_rejects_mismatched_module(self):
        weights = SharedModuleWeights.from_module(make_model(seed=1))
        other = MLP(5, [9], 3, rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            weights.attach(other)

    def test_nbytes_and_names(self):
        source = make_model(seed=1)
        weights = SharedModuleWeights.from_module(source)
        state = source.state_dict()
        assert weights.parameter_names() == sorted(state)
        assert weights.nbytes() >= sum(a.nbytes for a in state.values())

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_child_process_forward_matches(self, method):
        ctx = multiprocessing.get_context(method)
        source = make_model(seed=1)
        weights = SharedModuleWeights.from_module(source, context=ctx)
        x = np.random.default_rng(3).normal(size=(2, 5))
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_forward, args=(weights, x, 7, queue))
        proc.start()
        child_out = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        np.testing.assert_allclose(child_out, _forward(source, x))
