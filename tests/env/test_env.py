"""Tests for the Gym-style rescheduling environment, observations and objectives."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterState,
    ConstraintConfig,
    PhysicalMachine,
    Placement,
    PMType,
    VirtualMachine,
    VMTypeCatalog,
)
from repro.datasets import SnapshotGenerator, small_spec
from repro.env import (
    FragmentRateObjective,
    MigrationMinimizationObjective,
    MixedFragmentObjective,
    MixedResourceObjective,
    ObservationBuilder,
    PM_FEATURE_DIM,
    RecordEpisodeStatistics,
    RewardScaling,
    SyncVectorEnv,
    TimeLimit,
    VMRescheduleEnv,
    VM_FEATURE_DIM,
    make_objective,
)
from repro.env.spaces import Box, Discrete, MultiDiscrete, Tuple as TupleSpace

CATALOG = VMTypeCatalog.main()


def build_state():
    """Two 64-core PMs with fragments that a single migration can fix."""
    pms = [PhysicalMachine(pm_id=i, pm_type=PMType("pm64", cpu=64, memory=256)) for i in range(3)]
    state = ClusterState(pms=pms, vms=[])
    def add(vm_id, name, pm, numa):
        state.add_vm(VirtualMachine(vm_id=vm_id, vm_type=CATALOG.get(name)), Placement(pm_id=pm, numa_id=numa))
    add(0, "4xlarge", 0, 0)
    add(1, "xlarge", 0, 0)
    add(2, "2xlarge", 0, 1)
    add(3, "4xlarge", 1, 0)
    add(4, "2xlarge", 1, 1)
    add(5, "xlarge", 2, 0)
    return state


@pytest.fixture
def env():
    return VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=5))


class TestSpaces:
    def test_discrete(self):
        space = Discrete(4, seed=0)
        assert space.contains(space.sample())
        assert not space.contains(7)
        with pytest.raises(ValueError):
            Discrete(0)

    def test_box(self):
        space = Box(0.0, 1.0, shape=(2, 3), seed=0)
        assert space.sample().shape == (2, 3)
        assert space.contains(np.full((2, 3), 0.5))
        assert not space.contains(np.full((2, 3), 2.0))

    def test_multidiscrete(self):
        space = MultiDiscrete([3, 5], seed=0)
        assert space.contains(space.sample())
        assert not space.contains([3, 0])

    def test_tuple(self):
        space = TupleSpace((Discrete(3), Discrete(4)), seed=0)
        sample = space.sample()
        assert space.contains(sample)
        assert len(space) == 2


class TestObservationBuilder:
    def test_feature_shapes_match_paper(self):
        state = build_state()
        obs = ObservationBuilder().build(state, migrations_left=10)
        assert obs.pm_features.shape == (3, PM_FEATURE_DIM)
        assert obs.vm_features.shape == (6, VM_FEATURE_DIM)
        assert PM_FEATURE_DIM == 8
        assert VM_FEATURE_DIM == 14

    def test_features_are_normalized(self):
        state = build_state()
        obs = ObservationBuilder().build(state, migrations_left=10)
        assert obs.pm_features.min() >= -1e-9
        assert obs.pm_features.max() <= 1.0 + 1e-9
        assert obs.vm_features.min() >= -1e-9
        assert obs.vm_features.max() <= 1.0 + 1e-9

    def test_source_pm_indices(self):
        state = build_state()
        obs = ObservationBuilder().build(state, migrations_left=10)
        assert obs.vm_source_pm.tolist() == [0, 0, 0, 1, 1, 2]

    def test_tree_membership_matrix(self):
        state = build_state()
        obs = ObservationBuilder().build(state, migrations_left=10)
        membership = obs.tree_membership()
        assert membership.shape == (6, 3)
        assert membership[0, 0] and membership[5, 2]
        assert membership.sum() == 6

    def test_vm_mask_all_movable(self):
        state = build_state()
        obs = ObservationBuilder().build(state, migrations_left=10)
        assert obs.vm_mask.all()

    def test_pm_mask_excludes_source(self):
        state = build_state()
        builder = ObservationBuilder()
        mask = builder.pm_mask(state, vm_id=0)
        assert not mask[0]  # source PM excluded
        assert mask[1] or mask[2]


class TestEnvBasics:
    def test_reset_returns_observation(self, env):
        obs = env.reset()
        assert obs.num_vms == 6
        assert obs.num_pms == 3
        assert env.migrations_left() == 5

    def test_step_before_reset_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step((0, 1))

    def test_step_executes_migration_and_updates_state(self, env):
        env.reset()
        mask = env.pm_action_mask(1)  # VM 1 is the 4-core VM on PM0
        dest = int(np.argmax(mask))
        _, reward, done, info = env.step((1, dest))
        assert info["steps_taken"] == 1
        assert env.state.vms[1].pm_id == sorted(env.state.pms)[dest]
        assert np.isfinite(reward)

    def test_reward_matches_manual_fragment_computation(self):
        state = build_state()
        env = VMRescheduleEnv(state, ConstraintConfig(migration_limit=5))
        env.reset()
        objective = env.objective
        vm_ids = sorted(env.state.vms)
        pm_ids = sorted(env.state.pms)
        vm_index = 1
        source_pm = env.state.vms[vm_ids[vm_index]].pm_id
        mask = env.pm_action_mask(vm_index)
        dest_index = int(np.argmax(mask))
        dest_pm = pm_ids[dest_index]
        before_src = objective.pm_score(env.state, source_pm)
        before_dst = objective.pm_score(env.state, dest_pm)
        expected_state = env.state.copy()
        expected_state.migrate_vm(vm_ids[vm_index], dest_pm)
        after_src = objective.pm_score(expected_state, source_pm)
        after_dst = objective.pm_score(expected_state, dest_pm)
        expected_reward = (before_src - after_src) + (before_dst - after_dst)
        _, reward, _, _ = env.step((vm_index, dest_index))
        assert reward == pytest.approx(expected_reward)

    def test_illegal_action_raises_by_default(self, env):
        env.reset()
        vm_index = 0
        source_pm_index = sorted(env.state.pms).index(env.state.vms[sorted(env.state.vms)[vm_index]].pm_id)
        with pytest.raises(ValueError):
            env.step((vm_index, source_pm_index))

    def test_illegal_action_penalty_mode(self):
        env = VMRescheduleEnv(
            build_state(), ConstraintConfig(migration_limit=3), illegal_action_penalty=-5.0
        )
        env.reset()
        fr_before = env.fragment_rate()
        _, reward, _, info = env.step((0, 0))  # destination == source -> illegal
        assert reward == -5.0
        assert env.fragment_rate() == pytest.approx(fr_before)
        assert not info["last_step"].legal

    def test_episode_terminates_at_mnl(self, env):
        env.reset()
        done = False
        steps = 0
        while not done:
            mask = env.vm_action_mask()
            vm_index = int(np.argmax(mask))
            pm_mask = env.pm_action_mask(vm_index)
            if not pm_mask.any():
                break
            _, _, done, _ = env.step((vm_index, int(np.argmax(pm_mask))))
            steps += 1
        assert steps <= 5

    def test_reset_restores_template(self, env):
        env.reset()
        mask = env.pm_action_mask(1)
        env.step((1, int(np.argmax(mask))))
        fr_after_step = env.fragment_rate()
        obs = env.reset()
        assert env.steps_taken == 0
        assert env.fragment_rate() == pytest.approx(env.initial_metric())
        assert env.fragment_rate() != pytest.approx(fr_after_step) or True

    def test_out_of_range_action_raises(self, env):
        env.reset()
        with pytest.raises(IndexError):
            env.step((99, 0))
        with pytest.raises(IndexError):
            env.step((0, 99))

    def test_executed_plan_tracks_legal_steps(self, env):
        env.reset()
        mask = env.pm_action_mask(1)
        env.step((1, int(np.argmax(mask))))
        plan = env.executed_plan()
        assert len(plan) == 1

    def test_joint_action_mask_shape(self, env):
        env.reset()
        joint = env.joint_action_mask()
        assert joint.shape == (6, 3)

    def test_state_sampler_provides_new_states(self):
        generator = SnapshotGenerator(small_spec(), seed=0)
        env = VMRescheduleEnv(
            state_sampler=generator.generate, constraint_config=ConstraintConfig(migration_limit=3)
        )
        obs1 = env.reset()
        obs2 = env.reset()
        assert obs1.num_vms > 0 and obs2.num_vms > 0

    def test_render_contains_fr(self, env):
        env.reset()
        assert "FR=" in env.render()


class TestObjectives:
    def test_factory(self):
        assert isinstance(make_objective("fragment_rate"), FragmentRateObjective)
        assert isinstance(make_objective("min_migrations", fr_goal=0.4), MigrationMinimizationObjective)
        with pytest.raises(KeyError):
            make_objective("unknown")

    def test_fragment_rate_objective_metric(self):
        state = build_state()
        objective = FragmentRateObjective()
        assert objective.episode_metric(state) == pytest.approx(state.fragment_rate())

    def test_min_migration_objective_rewards(self):
        state = build_state()
        objective = MigrationMinimizationObjective(fr_goal=1.0)  # trivially satisfied
        assert objective.goal_reached(state)
        reward = objective.step_reward(0.2, 0.1, 0.3, 0.2, state)
        assert reward == pytest.approx(10.0 + 0.2)

    def test_min_migration_objective_penalty_when_unmet(self):
        state = build_state()
        objective = MigrationMinimizationObjective(fr_goal=0.0)
        assert not objective.goal_reached(state)
        reward = objective.step_reward(0.2, 0.2, 0.2, 0.2, state)
        assert reward == pytest.approx(-1.0)

    def test_min_migration_episode_ends_at_goal(self):
        state = build_state()
        goal = state.fragment_rate() - 1e-9  # any improvement reaches the goal
        env = VMRescheduleEnv(
            state,
            ConstraintConfig(migration_limit=10),
            objective=MigrationMinimizationObjective(fr_goal=goal),
        )
        env.reset()
        mask = env.pm_action_mask(1)
        _, _, done, info = env.step((1, int(np.argmax(mask))))
        if info["objective"] <= goal:
            assert done

    def test_mixed_fragment_objective_components(self):
        state = build_state()
        objective = MixedFragmentObjective(weight=0.4)
        components = objective.component_metrics(state)
        assert set(components) == {"fr16", "fr64"}
        value = objective.episode_metric(state)
        assert value == pytest.approx(0.6 * components["fr16"] + 0.4 * components["fr64"])

    def test_mixed_resource_objective_components(self):
        state = build_state()
        objective = MixedResourceObjective(weight=0.3)
        components = objective.component_metrics(state)
        assert set(components) == {"fr16", "mem64"}
        value = objective.episode_metric(state)
        assert value == pytest.approx(0.7 * components["fr16"] + 0.3 * components["mem64"])

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            MixedFragmentObjective(weight=1.2)
        with pytest.raises(ValueError):
            MixedResourceObjective(weight=-0.1)
        with pytest.raises(ValueError):
            MigrationMinimizationObjective(fr_goal=2.0)


class TestWrappersAndVectorEnv:
    def _run_episode(self, env):
        env.reset()
        done = False
        while not done:
            mask = env.vm_action_mask()
            if not mask.any():
                break
            vm_index = int(np.argmax(mask))
            pm_mask = env.pm_action_mask(vm_index)
            if not pm_mask.any():
                break
            _, _, done, info = env.step((vm_index, int(np.argmax(pm_mask))))
        return info

    def test_record_episode_statistics(self):
        env = RecordEpisodeStatistics(VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=3)))
        info = self._run_episode(env)
        assert "episode" in info
        assert env.episode_history
        assert env.episode_history[-1].length <= 3
        assert np.isfinite(env.mean_return())

    def test_reward_scaling(self):
        base = VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=3))
        scaled = RewardScaling(VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=3)), scale=2.0)
        base.reset(), scaled.reset()
        mask = base.pm_action_mask(1)
        action = (1, int(np.argmax(mask)))
        _, r1, _, _ = base.step(action)
        _, r2, _, _ = scaled.step(action)
        assert r2 == pytest.approx(2.0 * r1)

    def test_time_limit(self):
        env = TimeLimit(VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=50)), max_steps=1)
        env.reset()
        mask = env.pm_action_mask(1)
        _, _, done, info = env.step((1, int(np.argmax(mask))))
        assert done
        assert info.get("truncated")

    def test_wrapper_validation(self):
        env = VMRescheduleEnv(build_state())
        with pytest.raises(ValueError):
            RewardScaling(env, scale=0.0)
        with pytest.raises(ValueError):
            TimeLimit(env, max_steps=0)
        with pytest.raises(ValueError):
            RecordEpisodeStatistics(env, history_size=0)

    def test_sync_vector_env(self):
        def factory():
            return VMRescheduleEnv(build_state(), ConstraintConfig(migration_limit=2))

        venv = SyncVectorEnv([factory, factory])
        observations = venv.reset()
        assert len(observations) == 2
        masks = venv.call("pm_action_mask", 1)
        actions = [(1, int(np.argmax(mask))) for mask in masks]
        observations, rewards, dones, infos = venv.step(actions)
        assert rewards.shape == (2,)
        assert len(observations) == 2

    def test_sync_vector_env_validation(self):
        with pytest.raises(ValueError):
            SyncVectorEnv([])
        venv = SyncVectorEnv([lambda: VMRescheduleEnv(build_state())])
        venv.reset()
        with pytest.raises(ValueError):
            venv.step([(0, 1), (0, 1)])
