"""Lifecycle tests: stop/drain/signal paths for the service, the HTTP
frontend, and the fleet behind it.

The contract under test: shutdown paths are idempotent, draining components
answer probes with an immediate 503 (never a hang), and every admitted
request still gets exactly one terminal reply on the way down.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    DefaultRegistryFactory,
    FleetConfig,
    PlanRequest,
    PlanResponse,
    PlanningServer,
    ReplicaFleet,
    ReschedulingService,
    RetryPolicy,
    ServiceConfig,
    build_default_registry,
)


def small_state(seed=0):
    spec = ClusterSpec(num_pms=5, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


def plan_request(seed=0):
    return PlanRequest.from_state(small_state(seed), planner="ha", migration_limit=2)


def make_service(**config_overrides):
    return ReschedulingService(
        build_default_registry(include_slow=False, seed=0),
        ServiceConfig(**config_overrides),
    )


def get_json(url, timeout=30):
    """GET returning (status, payload) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestServiceLifecycle:
    def test_double_stop_is_idempotent(self):
        service = make_service()
        service.start()
        assert service.is_serving
        service.stop()
        assert not service.is_serving
        service.stop()  # second stop must be a no-op, not an error

    def test_stop_without_start_is_a_noop(self):
        make_service().stop()

    def test_drain_completes_queued_work_then_stops(self):
        service = make_service()
        service.start()
        futures = [service.submit(plan_request(seed=i)) for i in range(4)]
        service.drain(timeout=30.0)
        assert not service.is_serving
        for future in futures:
            assert isinstance(future.result(timeout=1.0), PlanResponse)

    def test_begin_drain_flips_serving_and_sheds(self):
        service = make_service()
        service.start()
        try:
            service.begin_drain()
            assert service.is_draining and not service.is_serving
            reply = service.submit(plan_request()).result(timeout=5.0)
            assert reply.code == "service_unavailable"
            assert reply.retry_after_s is not None
        finally:
            service.stop()

    def test_restart_after_stop_clears_draining(self):
        service = make_service()
        service.start()
        service.begin_drain()
        service.stop()
        service.start()
        try:
            assert service.is_serving and not service.is_draining
            assert isinstance(service.handle(plan_request()), PlanResponse)
        finally:
            service.stop()

    def test_state_shape(self):
        service = make_service()
        with service:
            assert isinstance(service.handle(plan_request()), PlanResponse)
        state = service.state()  # read after the context exits
        assert state["serving"] is False
        assert set(state) >= {"serving", "draining", "queue_depth", "latency", "stats"}
        assert state["latency"]["p50_ms"] >= 0.0


class TestHealthzDuringShutdown:
    def test_healthz_503_while_draining_and_after_stop(self):
        service = make_service()
        server = PlanningServer(service, host="127.0.0.1", port=0)
        server.start()
        try:
            status, payload = get_json(server.url + "/healthz")
            assert status == 200 and payload["status"] == "ok"

            service.begin_drain()
            start = time.perf_counter()
            status, payload = get_json(server.url + "/healthz")
            elapsed = time.perf_counter() - start
            assert status == 503
            assert payload["status"] == "draining"
            assert elapsed < 5.0, "a draining probe must answer, not hang"

            service.stop()
            status, payload = get_json(server.url + "/healthz")
            assert status == 503
            assert payload["status"] == "stopped"
        finally:
            server.stop()

    def test_healthz_503_carries_retry_after_header(self):
        service = make_service()
        server = PlanningServer(service, host="127.0.0.1", port=0)
        server.start()
        try:
            service.begin_drain()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/healthz", timeout=30)
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            server.stop()

    def test_server_drain_is_graceful_and_double_stop_safe(self):
        service = make_service()
        server = PlanningServer(service, host="127.0.0.1", port=0)
        server.start()
        future = service.submit(plan_request())
        server.drain(timeout=30.0)
        assert isinstance(future.result(timeout=1.0), PlanResponse)
        server.stop()  # drain already stopped everything; must not raise


class TestFleetBackendOverHTTP:
    @pytest.fixture()
    def fleet_server(self):
        fleet = ReplicaFleet(
            DefaultRegistryFactory(),
            config=FleetConfig(
                num_replicas=2,
                start_method="fork",
                heartbeat_interval_s=0.05,
                supervise_interval_s=0.02,
                retry=RetryPolicy(max_retries=2, backoff_s=0.02),
            ),
        )
        fleet.start(timeout=60.0)
        server = PlanningServer(fleet, host="127.0.0.1", port=0)
        server.start()  # fleet.start() is idempotent under the hood
        try:
            yield server, fleet
        finally:
            server.stop()

    def test_fleet_state_endpoint_over_http(self, fleet_server):
        server, fleet = fleet_server
        request = plan_request()
        http_request = urllib.request.Request(
            server.url + "/v1/plan",
            data=request.to_json().encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(http_request, timeout=60) as response:
            assert response.status == 200
        status, state = get_json(server.url + "/v1/state")
        assert status == 200
        assert state["serving"] is True
        assert len(state["replicas"]) == 2
        assert all(r["healthy"] for r in state["replicas"])

    def test_fleet_healthz_503_after_drain(self, fleet_server):
        server, fleet = fleet_server
        fleet.drain(timeout=60.0)
        status, payload = get_json(server.url + "/healthz")
        assert status == 503
        assert payload["status"] == "stopped"
