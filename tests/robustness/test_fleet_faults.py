"""Chaos tests for the replica fleet: crash/hang/kill churn, drain, rolling
restart, and the exactly-one-terminal-reply invariant they all assert.

Fleets here run small and fast (fork, tight heartbeats, short backoffs) so a
full kill-respawn-retry cycle fits in CI seconds; one spawn-marked test keeps
the picklability contract honest.
"""

import threading
import time

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    DefaultRegistryFactory,
    FleetConfig,
    PlanError,
    PlanRequest,
    PlanResponse,
    ReplicaFleet,
    RetryPolicy,
    ServiceConfig,
)
from repro.testing import CRASH_EXIT_CODE, FaultyRegistryFactory, kill_replica


def small_state(seed=0):
    spec = ClusterSpec(num_pms=5, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


def plan_request(seed=0, planner="ha", migration_limit=2):
    return PlanRequest.from_state(
        small_state(seed), planner=planner, migration_limit=migration_limit
    )


def fast_config(**overrides):
    """A fleet tuned for test speed: tight heartbeats, short backoffs."""
    defaults = dict(
        num_replicas=2,
        start_method="fork",
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=2.0,
        supervise_interval_s=0.02,
        restart_backoff_s=0.02,
        retry=RetryPolicy(max_retries=3, backoff_s=0.02),
        ready_timeout_s=60.0,
        seed=0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def start_fleet(config, factory=None, service_config=None):
    fleet = ReplicaFleet(
        factory or DefaultRegistryFactory(),
        config=config,
        service_config=service_config or ServiceConfig(),
    )
    fleet.start(timeout=60.0)
    return fleet


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestKillChurn:
    def test_sigkill_mid_stream_loses_no_request(self):
        fleet = start_fleet(fast_config())
        try:
            futures = [fleet.submit(plan_request(seed=i)) for i in range(10)]
            assert kill_replica(fleet, 0) is not None
            futures += [fleet.submit(plan_request(seed=10 + i)) for i in range(10)]
            replies = [f.result(timeout=60.0) for f in futures]
            # Exactly one terminal reply per request, and the retry path made
            # every one of them a success despite the mid-stream kill.
            assert all(isinstance(r, PlanResponse) for r in replies)
            stats = fleet.stats()
            assert stats["submitted"] == 20
            assert stats["completed"] == 20
            assert stats["errors"] == 0
            assert stats["replica_failures"] >= 1
            # The killed slot comes back within its restart budget.
            assert wait_until(
                lambda: all(r["healthy"] for r in fleet.state()["replicas"])
            )
            assert fleet.supervisor_stats()["restarts"] >= 1
        finally:
            fleet.stop()

    def test_repeated_kills_stay_within_budget(self):
        fleet = start_fleet(fast_config(max_replica_restarts=3))
        try:
            for round_index in range(2):
                assert wait_until(
                    lambda: fleet.state()["replicas"][1]["healthy"]
                ), f"replica 1 not back before round {round_index}"
                future = fleet.submit(plan_request(seed=round_index))
                kill_replica(fleet, 1)
                assert isinstance(future.result(timeout=60.0), PlanResponse)
            assert wait_until(
                lambda: all(r["healthy"] for r in fleet.state()["replicas"])
            )
            per_replica = fleet.supervisor_stats()["restarts_per_replica"]
            assert per_replica[1] <= 3
        finally:
            fleet.stop()

    def test_poisoned_single_replica_fleet_terminates_every_future(self, tmp_path):
        # Every "ha" call hard-exits the replica and there is no survivor to
        # retry on: the future must still resolve — with a terminal error —
        # once the retry and restart budgets run out.
        factory = FaultyRegistryFactory(
            DefaultRegistryFactory(),
            "ha",
            fail_calls=tuple(range(64)),
            kind="crash",
        )
        fleet = start_fleet(
            fast_config(
                num_replicas=1,
                max_replica_restarts=2,
                retry=RetryPolicy(max_retries=1, backoff_s=0.02),
                queue_wait_timeout_s=10.0,
            ),
            factory=factory,
        )
        try:
            reply = fleet.submit(plan_request()).result(timeout=60.0)
            assert isinstance(reply, PlanError)
            assert reply.code == "service_unavailable"
            assert fleet.stats()["errors"] == 1
        finally:
            fleet.stop()


class TestInjectedReplicaFaults:
    def test_replica_crash_fault_is_retried_on_survivor(self, tmp_path):
        # The first "ha" plan call os._exits its replica (once, via the
        # latch); the fleet must retry it on the survivor and restart the
        # crashed slot without the caller noticing anything but latency.
        factory = FaultyRegistryFactory(
            DefaultRegistryFactory(),
            "ha",
            fail_calls=(0,),
            kind="crash",
            latch=str(tmp_path / "crash.latch"),
        )
        fleet = start_fleet(fast_config(), factory=factory)
        try:
            replies = [
                fleet.submit(plan_request(seed=i)).result(timeout=60.0)
                for i in range(4)
            ]
            assert all(isinstance(r, PlanResponse) for r in replies)
            stats = fleet.stats()
            assert stats["replica_failures"] >= 1
            assert stats["retried"] >= 1
            assert wait_until(
                lambda: all(r["healthy"] for r in fleet.state()["replicas"])
            )
        finally:
            fleet.stop()

    def test_hung_replica_is_detected_and_replaced(self, tmp_path):
        # A hang does NOT stop heartbeats (the service worker sleeps, the
        # heartbeat thread keeps beating) — detection must come from request
        # age crossing request_timeout_s.
        factory = FaultyRegistryFactory(
            DefaultRegistryFactory(),
            "ha",
            fail_calls=(0,),
            kind="hang",
            latch=str(tmp_path / "hang.latch"),
        )
        fleet = start_fleet(
            fast_config(request_timeout_s=1.0), factory=factory
        )
        try:
            reply = fleet.submit(plan_request()).result(timeout=60.0)
            assert isinstance(reply, PlanResponse)
            stats = fleet.stats()
            assert stats["replica_failures"] >= 1
            assert wait_until(
                lambda: all(r["healthy"] for r in fleet.state()["replicas"])
            )
        finally:
            fleet.stop()


class TestDrainAndRollingRestart:
    def test_drain_finishes_admitted_work_and_sheds_new(self):
        fleet = start_fleet(fast_config())
        try:
            futures = [fleet.submit(plan_request(seed=i)) for i in range(8)]
            dropped = fleet.drain(timeout=60.0)
            assert dropped == 0
            for future in futures:
                assert isinstance(future.result(timeout=1.0), PlanResponse)
            assert not fleet.is_serving
        finally:
            fleet.stop()

    def test_draining_fleet_sheds_with_retry_hint(self):
        fleet = start_fleet(fast_config())
        try:
            fleet._draining = True
            reply = fleet.submit(plan_request()).result(timeout=5.0)
            assert isinstance(reply, PlanError)
            assert reply.code == "service_unavailable"
            assert reply.retry_after_s is not None
            assert fleet.stats()["shed"] == 1
            fleet._draining = False
            ok = fleet.submit(plan_request()).result(timeout=60.0)
            assert isinstance(ok, PlanResponse)
        finally:
            fleet.stop()

    def test_drain_survives_replica_killed_mid_drain(self):
        fleet = start_fleet(fast_config())
        try:
            futures = [fleet.submit(plan_request(seed=i)) for i in range(6)]
            killer = threading.Thread(
                target=lambda: kill_replica(fleet, 0), daemon=True
            )
            killer.start()
            dropped = fleet.drain(timeout=60.0)
            killer.join(timeout=5.0)
            assert dropped == 0
            replies = [f.result(timeout=1.0) for f in futures]
            assert all(isinstance(r, (PlanResponse, PlanError)) for r in replies)
            assert all(isinstance(r, PlanResponse) for r in replies), [
                r.message for r in replies if isinstance(r, PlanError)
            ]
        finally:
            fleet.stop()

    def test_rolling_restart_replaces_every_pid_without_drops(self):
        fleet = start_fleet(fast_config())
        try:
            before = [r["pid"] for r in fleet.state()["replicas"]]
            assert isinstance(
                fleet.submit(plan_request()).result(timeout=60.0), PlanResponse
            )
            fleet.rolling_restart(timeout_per_replica=60.0)
            after = [r["pid"] for r in fleet.state()["replicas"]]
            assert all(a != b for a, b in zip(after, before))
            assert fleet.stats()["rolls"] == 2
            # Intentional rolls never consume the failure restart budget.
            assert fleet.supervisor_stats()["restarts"] == 0
            assert isinstance(
                fleet.submit(plan_request(seed=1)).result(timeout=60.0),
                PlanResponse,
            )
        finally:
            fleet.stop()


class TestStopAndState:
    def test_stop_resolves_outstanding_futures(self):
        fleet = start_fleet(fast_config())
        futures = [fleet.submit(plan_request(seed=i)) for i in range(4)]
        fleet.stop()
        for future in futures:
            reply = future.result(timeout=5.0)
            if isinstance(reply, PlanError):
                assert reply.code == "service_unavailable"
        with pytest.raises(RuntimeError):
            fleet.submit(plan_request())
        fleet.stop()  # double stop is a no-op

    def test_stopped_fleet_cannot_restart(self):
        fleet = start_fleet(fast_config(num_replicas=1))
        fleet.stop()
        with pytest.raises(RuntimeError):
            fleet.start()

    def test_state_reports_replica_health_and_counters(self):
        fleet = start_fleet(fast_config())
        try:
            assert isinstance(
                fleet.submit(plan_request()).result(timeout=60.0), PlanResponse
            )
            state = fleet.state()
            assert state["serving"] is True
            assert state["draining"] is False
            assert len(state["replicas"]) == 2
            for replica in state["replicas"]:
                assert replica["healthy"] is True
                assert replica["state"] == "up"
                assert isinstance(replica["pid"], int)
                assert replica["restarts"] == 0
            assert state["inflight"] == 0 and state["waiting"] == 0
            assert set(state["latency"]) == {"p50_ms", "p95_ms", "p99_ms"}
            assert state["stats"]["completed"] == 1
        finally:
            fleet.stop()


class TestSpawnFleet:
    def test_spawn_fleet_serves_and_drains(self):
        fleet = start_fleet(
            fast_config(num_replicas=1, start_method="spawn", ready_timeout_s=120.0)
        )
        try:
            reply = fleet.submit(plan_request()).result(timeout=120.0)
            assert isinstance(reply, PlanResponse)
            assert fleet.drain(timeout=60.0) == 0
        finally:
            fleet.stop()
