"""Chaos tests for the rescheduling service: planner faults, shedding,
deadlines, stop-drain, and eval-pool recovery."""

import threading
import time

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    PlanError,
    PlanRequest,
    PlanResponse,
    ReschedulingService,
    ServiceConfig,
    build_default_registry,
)
from repro.testing import FaultyPlanner, kill_eval_pool_workers


def small_state(num_pms=5, seed=0):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


@pytest.fixture(scope="module")
def registry():
    return build_default_registry(include_slow=False, seed=0)


class TestPlannerFaultIsolation:
    def test_injected_planner_raise_is_isolated_per_request(self, registry):
        faulty = FaultyPlanner(registry.get("ha"), fail_calls=(0,))
        chaos_registry = build_default_registry(include_slow=False, seed=0)
        chaos_registry.register("faulty", faulty)
        service = ReschedulingService(chaos_registry, ServiceConfig())
        requests = [
            PlanRequest.from_state(small_state(), planner="faulty", migration_limit=2),
            PlanRequest.from_state(small_state(), planner="ha", migration_limit=2),
        ]
        replies = service.handle_many(requests)
        assert isinstance(replies[0], PlanError)
        assert replies[0].code == "internal_error"
        assert "injected planner fault" in replies[0].message
        assert isinstance(replies[1], PlanResponse)
        # The service keeps serving: the same planner works on its next call.
        follow_up = service.handle(
            PlanRequest.from_state(small_state(), planner="faulty", migration_limit=2)
        )
        assert isinstance(follow_up, PlanResponse)

    def test_faulty_batch_fails_only_its_group(self, registry):
        faulty = FaultyPlanner(registry.get("vmr2l"), fail_calls=(0,))
        chaos_registry = build_default_registry(include_slow=False, seed=0)
        chaos_registry.register("faulty-rl", faulty)
        service = ReschedulingService(chaos_registry, ServiceConfig(max_batch_size=4))
        requests = [
            PlanRequest.from_state(small_state(seed=i), planner="faulty-rl", migration_limit=2)
            for i in range(2)
        ] + [PlanRequest.from_state(small_state(seed=9), planner="ha", migration_limit=2)]
        replies = service.handle_many(requests)
        assert all(isinstance(reply, PlanError) for reply in replies[:2])
        assert all(reply.code == "internal_error" for reply in replies[:2])
        assert isinstance(replies[2], PlanResponse)


class TestAdmissionControlAndStop:
    def test_queue_overflow_sheds_with_service_unavailable(self, registry):
        service = ReschedulingService(
            registry,
            ServiceConfig(max_batch_size=1, micro_batching=False, max_queue_depth=1),
        )
        blocker = threading.Event()
        original_prepare = service._prepare

        def stalling_prepare(request):
            blocker.wait(timeout=10.0)
            return original_prepare(request)

        service._prepare = stalling_prepare
        service.start()
        try:
            futures = [
                service.submit(
                    PlanRequest.from_state(small_state(), planner="ha", migration_limit=1)
                )
                for _ in range(6)
            ]
            shed = [f for f in futures if f.done() and f.result().code == "service_unavailable"]
            assert shed, "overflowing the queue must shed immediately"
            assert service.stats()["shed"] >= len(shed)
            blocker.set()
            for future in futures:
                reply = future.result(timeout=30.0)
                assert isinstance(reply, (PlanResponse, PlanError))
        finally:
            blocker.set()
            service.stop()

    def test_stop_fails_queued_futures_instead_of_hanging(self, registry):
        service = ReschedulingService(
            registry, ServiceConfig(max_batch_size=1, micro_batching=False)
        )
        release = threading.Event()
        original_prepare = service._prepare

        def stalling_prepare(request):
            release.wait(timeout=10.0)
            return original_prepare(request)

        service._prepare = stalling_prepare
        service.start()
        in_flight = service.submit(
            PlanRequest.from_state(small_state(), planner="ha", migration_limit=1)
        )
        time.sleep(0.2)  # let the worker pick up the in-flight request
        queued = [
            service.submit(
                PlanRequest.from_state(small_state(), planner="ha", migration_limit=1)
            )
            for _ in range(3)
        ]

        def stop_soon():
            time.sleep(0.1)
            release.set()

        threading.Thread(target=stop_soon, daemon=True).start()
        service.stop(timeout=10.0)
        # Every queued future resolves — promptly, with a stable error.
        for future in queued:
            reply = future.result(timeout=5.0)
            if isinstance(reply, PlanError):
                assert reply.code == "service_unavailable"
        assert in_flight.result(timeout=5.0) is not None
        with pytest.raises(RuntimeError):
            service.submit(
                PlanRequest.from_state(small_state(), planner="ha", migration_limit=1)
            )


class TestDeadlineEnforcement:
    def test_partial_policy_returns_best_effort_plan(self, registry):
        service = ReschedulingService(registry, ServiceConfig())
        request = PlanRequest.from_state(
            small_state(num_pms=8, seed=1),
            planner="vmr2l",
            migration_limit=64,
            deadline_ms=30.0,
        )
        reply = service.handle(request)
        assert isinstance(reply, PlanResponse)
        assert reply.partial, "a 30 ms budget must cut a 64-step rollout short"
        assert reply.num_migrations < 64
        assert reply.metrics["deadline_ms"] == 30.0

    def test_partial_plans_are_prefixes_of_the_full_plan(self, registry):
        state = small_state(num_pms=8, seed=2)
        service = ReschedulingService(registry, ServiceConfig())
        full = service.handle(
            PlanRequest.from_state(state, planner="vmr2l", migration_limit=8)
        )
        bounded = service.handle(
            PlanRequest.from_state(
                state, planner="vmr2l", migration_limit=8, deadline_ms=30.0
            )
        )
        assert isinstance(full, PlanResponse) and isinstance(bounded, PlanResponse)
        assert bounded.migrations == full.migrations[: len(bounded.migrations)]

    def test_error_policy_maps_to_deadline_exceeded(self, registry):
        service = ReschedulingService(registry, ServiceConfig(deadline_policy="error"))
        reply = service.handle(
            PlanRequest.from_state(
                small_state(num_pms=8, seed=1),
                planner="vmr2l",
                migration_limit=64,
                deadline_ms=30.0,
            )
        )
        assert isinstance(reply, PlanError)
        assert reply.code == "deadline_exceeded"

    def test_fallback_policy_degrades_to_baseline(self, registry):
        service = ReschedulingService(
            registry,
            ServiceConfig(deadline_policy="fallback", fallback_planner="ha"),
        )
        reply = service.handle(
            PlanRequest.from_state(
                small_state(num_pms=8, seed=1),
                planner="vmr2l",
                migration_limit=64,
                deadline_ms=30.0,
            )
        )
        assert isinstance(reply, PlanResponse)
        assert not reply.partial
        assert reply.info.get("degraded_to") == "HA"
        assert reply.info.get("degraded_from")
        assert service.stats()["degraded"] >= 1

    def test_queue_expired_deadline_is_rejected_at_dequeue(self, registry):
        service = ReschedulingService(
            registry, ServiceConfig(max_batch_size=4, max_wait_ms=60.0)
        )
        with service:
            # The batching window (60 ms) alone exceeds this deadline.
            reply = service.plan(
                PlanRequest.from_state(
                    small_state(), planner="ha", migration_limit=1, deadline_ms=1.0
                ),
                timeout=30.0,
            )
        assert isinstance(reply, PlanError)
        assert reply.code == "deadline_exceeded"

    def test_tight_deadline_does_not_truncate_unconstrained_batchmates(self, registry):
        service = ReschedulingService(registry, ServiceConfig(max_batch_size=4))
        state = small_state(num_pms=8, seed=3)
        requests = [
            PlanRequest.from_state(state, planner="vmr2l", migration_limit=6),
            PlanRequest.from_state(
                state, planner="vmr2l", migration_limit=64, deadline_ms=25.0
            ),
        ]
        replies = service.handle_many(requests)
        assert isinstance(replies[0], PlanResponse)
        assert not replies[0].partial
        assert replies[0].num_migrations > 0

    def test_deadline_constrained_requests_respond_within_bounded_time(self, registry):
        service = ReschedulingService(registry, ServiceConfig())
        deadline_ms = 40.0
        start = time.perf_counter()
        reply = service.handle(
            PlanRequest.from_state(
                small_state(num_pms=8, seed=4),
                planner="vmr2l",
                migration_limit=64,
                deadline_ms=deadline_ms,
            )
        )
        elapsed_ms = (time.perf_counter() - start) * 1e3
        assert isinstance(reply, (PlanResponse, PlanError))
        # Bounded multiple of the budget: one in-flight stacked forward plus
        # plan evaluation can overshoot, but not unboundedly.
        assert elapsed_ms < deadline_ms * 25 + 1000.0


class TestEvalPoolRecovery:
    def test_killed_eval_pool_does_not_fail_requests(self, registry):
        service = ReschedulingService(
            registry,
            ServiceConfig(max_batch_size=4, eval_workers=1, eval_timeout_s=15.0),
        )
        try:
            requests = [
                PlanRequest.from_state(small_state(seed=i), planner="ha", migration_limit=2)
                for i in range(2)
            ]
            first = service.handle_many(requests)
            assert all(isinstance(reply, PlanResponse) for reply in first)
            kill_eval_pool_workers(service)
            second = service.handle_many(requests)
            assert all(isinstance(reply, PlanResponse) for reply in second)
        finally:
            service.stop()
