"""HTTP-boundary chaos: malformed/oversized payloads, traceback containment,
and the end-to-end deadline path (queue-expired and mid-plan-expired → 408)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    PlanningServer,
    PlanRequest,
    ReschedulingService,
    ServiceConfig,
    build_default_registry,
)
from repro.testing import FaultyPlanner, malformed_http_payloads, oversized_body


def small_state(num_pms=5, seed=0):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


def post_raw(url, body: bytes, timeout=60):
    """POST raw bytes; returns (status, parsed JSON body) without raising."""
    request = urllib.request.Request(
        url + "/v1/plan", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        payload = json.load(error)
        return error.code, payload


@pytest.fixture(scope="module")
def server():
    registry = build_default_registry(include_slow=False, seed=0)
    faulty = FaultyPlanner(registry.get("ha"), fail_calls=(0,))
    registry.register("faulty", faulty)
    service = ReschedulingService(
        registry, ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
    )
    with PlanningServer(
        service, host="127.0.0.1", port=0, max_body_bytes=256 * 1024
    ) as running:
        yield running


class TestMalformedPayloads:
    @pytest.mark.parametrize(
        "name,body", malformed_http_payloads(), ids=[n for n, _ in malformed_http_payloads()]
    )
    def test_malformed_bodies_yield_stable_400(self, server, name, body):
        status, payload = post_raw(server.url, body)
        assert status == 400, f"{name}: expected 400, got {status}"
        assert payload["ok"] is False
        assert payload["code"] == "invalid_request"
        assert "Traceback" not in payload.get("message", "")

    def test_empty_body_yields_400(self, server):
        status, payload = post_raw(server.url, b"")
        assert status == 400
        assert payload["code"] == "invalid_request"

    def test_oversized_body_yields_400(self, server):
        status, payload = post_raw(server.url, oversized_body(256 * 1024))
        assert status == 400
        assert payload["code"] == "invalid_request"
        assert "exceeds" in payload["message"]

    def test_within_limit_body_is_accepted(self, server):
        request = PlanRequest.from_state(small_state(), planner="ha", migration_limit=2)
        status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 200
        assert payload["ok"] is True


class TestErrorContainment:
    def test_planner_exception_yields_500_without_traceback(self, server):
        request = PlanRequest.from_state(small_state(), planner="faulty", migration_limit=2)
        status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 500
        assert payload["code"] == "internal_error"
        assert "Traceback" not in payload["message"]
        assert "\n" not in payload["message"]

    def test_unknown_planner_maps_to_404(self, server):
        request = PlanRequest.from_state(small_state(), planner="nope", migration_limit=2)
        status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 404
        assert payload["code"] == "unknown_planner"

    def test_stopped_service_yields_503(self):
        registry = build_default_registry(include_slow=False, seed=0)
        service = ReschedulingService(registry, ServiceConfig())
        server = PlanningServer(service, host="127.0.0.1", port=0)
        server.start()
        try:
            service.stop()  # service down, HTTP front still up
            request = PlanRequest.from_state(small_state(), planner="ha", migration_limit=1)
            status, payload = post_raw(server.url, request.to_json().encode())
            assert status == 503
            assert payload["code"] == "service_unavailable"
        finally:
            server.stop()


class TestDeadlineOverHTTP:
    def test_queue_expired_deadline_maps_to_408(self):
        registry = build_default_registry(include_slow=False, seed=0)
        service = ReschedulingService(
            registry, ServiceConfig(max_batch_size=4, max_wait_ms=60.0)
        )
        with PlanningServer(service, host="127.0.0.1", port=0) as server:
            request = PlanRequest.from_state(
                small_state(), planner="ha", migration_limit=1, deadline_ms=1.0
            )
            status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 408
        assert payload["code"] == "deadline_exceeded"
        assert "queue" in payload["message"]

    def test_mid_plan_expired_deadline_maps_to_408(self):
        registry = build_default_registry(include_slow=False, seed=0)
        service = ReschedulingService(
            registry,
            ServiceConfig(max_batch_size=4, max_wait_ms=1.0, deadline_policy="error"),
        )
        with PlanningServer(service, host="127.0.0.1", port=0) as server:
            request = PlanRequest.from_state(
                small_state(num_pms=8, seed=1),
                planner="vmr2l",
                migration_limit=64,
                deadline_ms=40.0,
            )
            status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 408
        assert payload["code"] == "deadline_exceeded"
        assert "expired" in payload["message"]

    def test_partial_policy_over_http_returns_200_with_partial_flag(self):
        registry = build_default_registry(include_slow=False, seed=0)
        service = ReschedulingService(
            registry, ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
        )
        with PlanningServer(service, host="127.0.0.1", port=0) as server:
            request = PlanRequest.from_state(
                small_state(num_pms=8, seed=1),
                planner="vmr2l",
                migration_limit=64,
                deadline_ms=40.0,
            )
            status, payload = post_raw(server.url, request.to_json().encode())
        assert status == 200
        assert payload["partial"] is True
        assert payload["num_migrations"] < 64
