"""Chaos tests for supervised multi-process collection.

Faults are injected deterministically via :mod:`repro.testing.faults`
(in-process wrappers that crash/hang worker processes at a chosen step), plus
direct SIGKILLs for the close-after-crash regression.  Crash/hang faults use
one-shot latch files so the *respawned* worker does not re-fault and exhaust
the restart budget.
"""

import threading
import time
from functools import partial

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import AsyncVectorEnv, AsyncVectorEnvError, VMRescheduleEnv
from repro.testing import CRASH_EXIT_CODE, FaultPlan, faulty_factories


@pytest.fixture(scope="module")
def snapshot():
    spec = ClusterSpec(name="chaos", num_pms=6, target_utilization=0.72, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=11).generate()


def factories(snapshot, count, migration_limit=4):
    config = ConstraintConfig(migration_limit=migration_limit)
    return [partial(VMRescheduleEnv, snapshot.copy(), config) for _ in range(count)]


def first_actions(venv, observations):
    """One legal (vm, pm) action per env via the vectorized mask exchange."""
    actions = []
    for index, obs in enumerate(observations):
        vm = int(np.flatnonzero(obs.vm_mask)[0])
        pm = int(np.flatnonzero(venv.pm_action_mask(index, vm))[0])
        actions.append((vm, pm))
    return actions


def collect_episode(venv, max_steps=12):
    """Step every env until each has reported done at least once."""
    observations = venv.reset()
    seen_done = np.zeros(venv.num_envs, dtype=bool)
    seen_restart = np.zeros(venv.num_envs, dtype=bool)
    for _ in range(max_steps):
        observations, _, dones, infos = venv.step(first_actions(venv, observations))
        seen_done |= np.asarray(dones, dtype=bool)
        for index, info in enumerate(infos):
            if info.get("worker_restarted"):
                seen_restart[index] = True
        if seen_done.all():
            break
    return seen_done, seen_restart


class TestSupervisedRestart:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_crash_mid_rollout_restarts_and_completes(self, snapshot, tmp_path, start_method):
        latch = str(tmp_path / f"crash-{start_method}.latch")
        plan = FaultPlan.crash(1, at_step=1, latch=latch)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 3), plan),
            num_workers=3,
            start_method=start_method,
            seed=7,
            on_worker_failure="restart",
        )
        try:
            seen_done, seen_restart = collect_episode(venv)
            assert seen_done.all(), "collection did not complete after the restart"
            assert seen_restart[1], "restarted env was not flagged"
            assert not seen_restart[0] and not seen_restart[2]
            stats = venv.supervisor_stats()
            assert stats["policy"] == "restart"
            assert stats["restarts"] == 1
            assert stats["restarts_per_worker"][1] == 1
        finally:
            venv.close()

    def test_hang_detected_by_timeout_and_restarted(self, snapshot, tmp_path):
        latch = str(tmp_path / "hang.latch")
        plan = FaultPlan.hang(2, at_step=1, latch=latch)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 3), plan),
            num_workers=3,
            seed=7,
            on_worker_failure="restart",
            worker_timeout_s=2.0,
        )
        try:
            seen_done, seen_restart = collect_episode(venv)
            assert seen_done.all()
            assert seen_restart[2]
            assert venv.supervisor_stats()["restarts"] == 1
        finally:
            venv.close()

    def test_restarted_shard_is_reseeded_and_reset(self, snapshot, tmp_path):
        latch = str(tmp_path / "reseed.latch")
        plan = FaultPlan.crash(0, at_step=0, latch=latch)
        limit = 4
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 2, migration_limit=limit), plan),
            num_workers=2,
            seed=5,
            on_worker_failure="restart",
        )
        try:
            observations = venv.reset()
            observations, _, dones, infos = venv.step(first_actions(venv, observations))
            assert infos[0].get("worker_restarted")
            assert bool(dones[0]), "the destroyed episode must report done"
            # The replacement worker reset its shard: the slot holds a fresh
            # initial observation (full migration budget), matching a fresh
            # env built from the same deterministic factory.
            assert observations[0].migrations_left == limit
            reference = VMRescheduleEnv(
                snapshot.copy(), ConstraintConfig(migration_limit=limit)
            ).reset()
            np.testing.assert_array_equal(observations[0].pm_features, reference.pm_features)
            np.testing.assert_array_equal(observations[0].vm_features, reference.vm_features)
        finally:
            venv.close()

    def test_restart_budget_exhaustion_raises(self, snapshot):
        # No latch: the replacement crashes at the same step, again and again,
        # so the per-worker budget runs out and the failure becomes terminal.
        plan = FaultPlan.crash(1, at_step=0)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 2), plan),
            num_workers=2,
            seed=7,
            on_worker_failure="restart",
            max_worker_restarts=1,
            restart_backoff_s=0.01,
        )
        try:
            observations = venv.reset()
            with pytest.raises(AsyncVectorEnvError, match="restart budget"):
                for _ in range(4):
                    observations, _, _, _ = venv.step(first_actions(venv, observations))
        finally:
            venv.close(terminate=True)

    def test_raise_policy_stays_terminal(self, snapshot, tmp_path):
        latch = str(tmp_path / "raise-policy.latch")
        plan = FaultPlan.crash(0, at_step=0, latch=latch)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 2), plan),
            num_workers=2,
            seed=7,
            on_worker_failure="raise",
        )
        try:
            observations = venv.reset()
            with pytest.raises(AsyncVectorEnvError):
                venv.step(first_actions(venv, observations))
        finally:
            venv.close(terminate=True)

    def test_crash_exit_code_is_distinguishable(self, snapshot, tmp_path):
        latch = str(tmp_path / "exitcode.latch")
        plan = FaultPlan.crash(0, at_step=0, latch=latch)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 1), plan),
            num_workers=1,
            seed=7,
            on_worker_failure="raise",
        )
        try:
            observations = venv.reset()
            with pytest.raises(AsyncVectorEnvError, match=str(CRASH_EXIT_CODE)):
                venv.step(first_actions(venv, observations))
        finally:
            venv.close(terminate=True)


class TestCloseAfterCrash:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_close_never_hangs_on_a_sigkilled_worker(self, snapshot, start_method):
        venv = AsyncVectorEnv(
            factories(snapshot, 3), num_workers=3, start_method=start_method, seed=3
        )
        venv.reset()
        venv._processes[1].kill()
        venv._processes[1].join(timeout=10.0)

        finished = threading.Event()

        def close_it():
            venv.close(timeout=2.0)
            finished.set()

        thread = threading.Thread(target=close_it, daemon=True)
        start = time.monotonic()
        thread.start()
        assert finished.wait(timeout=30.0), "close() hung on the dead worker's pipe"
        assert time.monotonic() - start < 30.0
        for process in venv._processes:
            assert process is None or not process.is_alive()

    def test_close_after_supervised_restart(self, snapshot, tmp_path):
        latch = str(tmp_path / "close-restart.latch")
        plan = FaultPlan.crash(0, at_step=0, latch=latch)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 2), plan),
            num_workers=2,
            seed=7,
            on_worker_failure="restart",
        )
        observations = venv.reset()
        venv.step(first_actions(venv, observations))
        assert venv.supervisor_stats()["restarts"] == 1
        venv.close()  # must join the *replacement* processes cleanly
        for process in venv._processes:
            assert process is None or not process.is_alive()


class TestSlowFaults:
    def test_slow_steps_only_add_latency(self, snapshot):
        plan = FaultPlan.slow(0, at_step=0, latency_s=0.2)
        venv = AsyncVectorEnv(
            faulty_factories(factories(snapshot, 2), plan),
            num_workers=2,
            seed=7,
            on_worker_failure="restart",
            worker_timeout_s=5.0,  # slow, but under the hang threshold
        )
        try:
            observations = venv.reset()
            observations, _, _, infos = venv.step(first_actions(venv, observations))
            assert not any(info.get("worker_restarted") for info in infos)
            assert venv.supervisor_stats()["restarts"] == 0
        finally:
            venv.close()
