"""StepCache degradation: a journal overflow must mean a fresh recompute,
never a stale cache hit — plans stay identical to the no-cache path.

The mutation journal of :class:`repro.cluster.soa.ClusterArrays` is capped at
``JOURNAL_CAPACITY``; when it overflows, entries are dropped and
``dirty_since`` answers ``None`` for pre-drop versions, forcing cache
consumers to rebuild.  Shrinking the cap to a handful of entries makes every
episode overflow within a step or two, exercising the fallback continuously.
"""

import pytest

import repro.cluster.soa as soa
from repro.cluster import ConstraintConfig
from repro.core import VMR2LAgent
from repro.datasets import ClusterSpec, SnapshotGenerator


def snapshots(count, num_pms=6, seed=0):
    spec = ClusterSpec(name="jo", num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.3)
    generator = SnapshotGenerator(spec, seed=seed)
    return [generator.generate() for _ in range(count)]


@pytest.fixture(scope="module")
def agent():
    return VMR2LAgent(constraint_config=ConstraintConfig(migration_limit=5), seed=0)


def plans(results):
    return [[m.as_tuple() for m in result.plan] for result in results]


class TestJournalOverflowFallback:
    def test_overflowing_journal_keeps_plans_identical_to_no_cache(self, agent, monkeypatch):
        # Every mutation now overflows the journal almost immediately.
        monkeypatch.setattr(soa, "JOURNAL_CAPACITY", 2)
        states = snapshots(3)
        cached = agent.plan_batch(states, migration_limits=4, greedy=True, use_step_cache=True)
        fresh = agent.plan_batch(states, migration_limits=4, greedy=True, use_step_cache=False)
        assert plans(cached) == plans(fresh)
        assert all(len(plan) > 0 for plan in plans(cached)), "trivial plans prove nothing"

    def test_overflow_mid_run_is_recoverable(self, agent, monkeypatch):
        # Reference plans with the stock capacity, then replan with a cap so
        # small it overflows mid-episode: results must not change.
        states = snapshots(2, seed=5)
        reference = agent.plan_batch(states, migration_limits=4, greedy=True, use_step_cache=True)
        monkeypatch.setattr(soa, "JOURNAL_CAPACITY", 1)
        overflowed = agent.plan_batch(states, migration_limits=4, greedy=True, use_step_cache=True)
        assert plans(reference) == plans(overflowed)
