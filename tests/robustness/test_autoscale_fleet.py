"""Chaos tests for closed-loop autoscaling and the fleet brownout ladder.

The pure decision logic is covered in tests/serve/test_autoscale_unit.py;
these tests prove real replica processes *obey* the decisions: scale-up
spawns capacity under a burst, scale-down drains before it kills (zero
dropped in-flight requests — the invariant of the whole design), and the
exactly-one-terminal-reply property survives SIGKILL churn happening
*concurrently* with scaling in both directions.
"""

import threading
import time

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    AutoscaleConfig,
    BrownoutConfig,
    DefaultRegistryFactory,
    FleetConfig,
    PlanError,
    PlanRequest,
    PlanResponse,
    ReplicaFleet,
    RetryPolicy,
    ServiceConfig,
)
from repro.testing import LoadSpike, kill_replica, slow_replica_factory


def small_state(seed=0):
    spec = ClusterSpec(num_pms=5, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


def plan_request(seed=0, planner="ha", migration_limit=2):
    return PlanRequest.from_state(
        small_state(seed), planner=planner, migration_limit=migration_limit
    )


def fast_config(**overrides):
    defaults = dict(
        num_replicas=1,
        start_method="fork",
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=2.0,
        supervise_interval_s=0.02,
        restart_backoff_s=0.02,
        retry=RetryPolicy(max_retries=3, backoff_s=0.02),
        ready_timeout_s=60.0,
        seed=0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def start_fleet(config, factory=None, service_config=None):
    fleet = ReplicaFleet(
        factory or DefaultRegistryFactory(),
        config=config,
        service_config=service_config or ServiceConfig(),
    )
    fleet.start(timeout=60.0)
    return fleet


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def desired_count(fleet):
    return sum(1 for r in fleet.state()["replicas"] if r["desired"])


class TestScaleUp:
    def test_burst_scales_the_fleet_up(self):
        # Aggressive thresholds so one burst forces a decision within a few
        # 20ms supervisor ticks; a huge down-cooldown freezes the other
        # direction for the duration of the test.
        config = fast_config(
            autoscale=AutoscaleConfig(
                min_replicas=1,
                max_replicas=3,
                scale_up_backlog=1.5,
                scale_down_backlog=0.2,
                alpha=1.0,
                cooldown_up_s=0.05,
                cooldown_down_s=300.0,
            ),
        )
        fleet = start_fleet(config)
        try:
            spike = LoadSpike(base=1, peak=12, start_round=0, duration_rounds=1)
            futures = [
                fleet.submit(plan_request(seed=i)) for i in range(spike.peak)
            ]
            assert wait_until(lambda: fleet.stats()["scale_ups"] >= 1)
            replies = [f.result(timeout=60.0) for f in futures]
            assert all(isinstance(r, PlanResponse) for r in replies)
            stats = fleet.stats()
            assert stats["submitted"] == spike.peak
            assert stats["completed"] == spike.peak
            assert stats["errors"] == 0
            # The scaled-up slot is a first-class replica: desired and (soon)
            # routable.
            assert desired_count(fleet) >= 2
            assert fleet.state()["autoscale"]["scale_ups"] >= 1
        finally:
            fleet.stop()

    def test_scale_down_after_quiet_cooldown(self):
        config = fast_config(
            num_replicas=2,
            autoscale=AutoscaleConfig(
                min_replicas=1,
                max_replicas=2,
                scale_up_backlog=50.0,  # never up in this test
                scale_down_backlog=0.5,
                alpha=1.0,
                cooldown_up_s=0.05,
                cooldown_down_s=0.2,
            ),
        )
        fleet = start_fleet(config)
        try:
            assert isinstance(
                fleet.submit(plan_request()).result(timeout=60.0), PlanResponse
            )
            # Quiet fleet + elapsed cooldown: the supervisor retires one
            # replica down to min_replicas and no further.
            assert wait_until(lambda: fleet.stats()["scale_downs"] >= 1)
            assert wait_until(lambda: desired_count(fleet) == 1)
            time.sleep(0.5)  # several more cooldown windows
            assert desired_count(fleet) == 1  # min_replicas is a floor
            # The retired slot fully drained and stopped — never killed hot.
            retired = [
                r for r in fleet.state()["replicas"] if not r["desired"]
            ]
            assert retired and all(r["assigned"] == 0 for r in retired)
            assert wait_until(
                lambda: all(
                    r["state"] == "down"
                    for r in fleet.state()["replicas"]
                    if not r["desired"]
                )
            )
            assert fleet.stats()["errors"] == 0
        finally:
            fleet.stop()


class TestManualScaling:
    def test_scale_down_drains_in_flight_work_before_kill(self):
        fleet = start_fleet(
            fast_config(num_replicas=3, autoscale=AutoscaleConfig.manual(1, 3))
        )
        try:
            futures = [fleet.submit(plan_request(seed=i)) for i in range(12)]
            assert fleet.set_target_replicas(1) == 1
            # THE invariant: every request admitted before the scale-down
            # still gets a successful reply — retirement drains, never drops.
            replies = [f.result(timeout=60.0) for f in futures]
            assert all(isinstance(r, PlanResponse) for r in replies)
            stats = fleet.stats()
            assert stats["completed"] == 12
            assert stats["errors"] == 0
            assert stats["scale_downs"] == 2
            assert wait_until(lambda: desired_count(fleet) == 1)
            # Scaling back up revives the retired slots.
            assert fleet.set_target_replicas(3) == 3
            assert wait_until(lambda: desired_count(fleet) == 3)
            assert isinstance(
                fleet.submit(plan_request(seed=99)).result(timeout=60.0),
                PlanResponse,
            )
        finally:
            fleet.stop()

    def test_targets_clamp_to_bounds(self):
        fleet = start_fleet(
            fast_config(num_replicas=1, autoscale=AutoscaleConfig.manual(1, 2))
        )
        try:
            assert fleet.set_target_replicas(100) == 2
            assert fleet.set_target_replicas(0) == 1
        finally:
            fleet.stop()

    def test_manual_scaling_requires_autoscale_config(self):
        fleet = start_fleet(fast_config())
        try:
            with pytest.raises(RuntimeError):
                fleet.set_target_replicas(2)
        finally:
            fleet.stop()


class TestChaosProperty:
    def test_kills_and_scaling_concurrently_yield_exactly_one_reply_each(self):
        """Property check (the PR's headline invariant): under concurrent
        SIGKILLs and scaling in both directions, every submitted request gets
        exactly ONE terminal reply, and the fleet's own counters balance."""
        fleet = start_fleet(
            fast_config(num_replicas=2, autoscale=AutoscaleConfig.manual(1, 3))
        )
        total = 24
        try:
            stop_churn = threading.Event()

            def churn():
                flip = 0
                while not stop_churn.is_set():
                    fleet.set_target_replicas(3 if flip % 2 == 0 else 1)
                    flip += 1
                    time.sleep(0.05)

            def killer():
                for _ in range(3):
                    if stop_churn.is_set():
                        return
                    # Kill whichever slot currently hosts a live pid.
                    for replica in fleet.state()["replicas"]:
                        if replica["state"] == "up" and replica["pid"]:
                            kill_replica(fleet, replica["index"])
                            break
                    time.sleep(0.15)

            threads = [
                threading.Thread(target=churn, daemon=True),
                threading.Thread(target=killer, daemon=True),
            ]
            for thread in threads:
                thread.start()
            futures = []
            for i in range(total):
                futures.append(fleet.submit(plan_request(seed=i)))
                time.sleep(0.01)  # interleave with the churn/kill threads
            replies = [f.result(timeout=120.0) for f in futures]
            stop_churn.set()
            for thread in threads:
                thread.join(timeout=5.0)

            # Exactly one terminal reply per submission — no drops, no dupes.
            assert len(replies) == total
            assert all(isinstance(r, (PlanResponse, PlanError)) for r in replies)
            stats = fleet.stats()
            assert stats["submitted"] == total
            assert stats["completed"] + stats["errors"] + stats["shed"] == total
            # Kills are absorbed by retry, not surfaced as caller errors.
            assert all(isinstance(r, PlanResponse) for r in replies), [
                (r.code, r.message) for r in replies if isinstance(r, PlanError)
            ]
        finally:
            fleet.stop()


class TestFleetBrownout:
    def test_slow_fleet_climbs_ladder_sheds_then_recovers(self):
        # One persistently slow replica + a burst drives normalized load over
        # every rung; L4 sheds new admissions with a Retry-After hint; once
        # the queue drains the ladder steps back down to normal.
        factory = slow_replica_factory(DefaultRegistryFactory(), "ha", 0.25)
        config = fast_config(
            brownout=BrownoutConfig(
                enter_thresholds=(0.05, 0.1, 0.15, 0.2),
                alpha=1.0,
                min_dwell=2,
                reduced_deadline_ms=60_000.0,  # keep L2 harmless here
            ),
        )
        fleet = start_fleet(config, factory=factory)
        try:
            requests = [plan_request(seed=i) for i in range(8)]
            futures = [fleet.submit(request) for request in requests]
            assert wait_until(
                lambda: fleet.control_plane_stats()["brownout_level"] >= 4,
                timeout=10.0,
            )
            shed_reply = fleet.submit(plan_request(seed=100)).result(timeout=5.0)
            assert isinstance(shed_reply, PlanError)
            assert shed_reply.code == "service_unavailable"
            assert shed_reply.retry_after_s is not None
            assert fleet.stats()["shed"] >= 1
            # Admitted work still completes — shedding exists to protect it.
            # (The burst's own tail may already be shed: the ladder can reach
            # L4 between two submissions, which is exactly the point.)
            replies = [f.result(timeout=120.0) for f in futures]
            admitted = [r for r in replies if not isinstance(r, PlanError)]
            assert admitted, "every burst request was shed; none admitted"
            assert all(isinstance(r, PlanResponse) for r in admitted)
            assert all(
                r.code == "service_unavailable"
                for r in replies
                if isinstance(r, PlanError)
            )
            # Recovery: with the queue drained the ladder exits rung by rung.
            assert wait_until(
                lambda: fleet.control_plane_stats()["brownout_level"] == 0,
                timeout=30.0,
            )
            state = fleet.state()
            assert state["brownout"]["transitions"] >= 2
        finally:
            fleet.stop()


class TestControlPlaneExport:
    def test_state_and_control_plane_surface_scaling_and_brownout(self):
        fleet = start_fleet(
            fast_config(
                num_replicas=1,
                autoscale=AutoscaleConfig.manual(1, 2),
                brownout=BrownoutConfig(),
            )
        )
        try:
            assert isinstance(
                fleet.submit(plan_request()).result(timeout=60.0), PlanResponse
            )
            fleet.set_target_replicas(2)
            assert wait_until(lambda: desired_count(fleet) == 2)
            state = fleet.state()
            assert state["autoscale"]["target"] == 2
            assert state["autoscale"]["min_replicas"] == 1
            assert state["autoscale"]["max_replicas"] == 2
            assert state["brownout"]["level_name"] == "normal"
            for replica in state["replicas"]:
                assert "brownout_level" in replica
                assert "desired" in replica and "retiring" in replica
            control = fleet.control_plane_stats()
            for key in (
                "submitted",
                "completed",
                "errors",
                "retried",
                "shed",
                "restarts",
                "replica_failures",
                "rolls",
                "scale_ups",
                "scale_downs",
                "active_replicas",
                "brownout_transitions",
                "brownout_level",
            ):
                assert key in control, key
            assert control["scale_ups"] == 1
            assert control["active_replicas"] == 2
        finally:
            fleet.stop()
