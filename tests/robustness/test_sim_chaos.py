"""Chaos: a replica dying mid-simulation must degrade the run, not abort it.

``repro simulate --url`` plans against a live fleet through
:class:`PlanningClient`; its bounded retries absorb the window where a killed
replica's requests bounce (503 / connection reset) until the supervisor
respawns it.  The simulation itself treats any terminal :class:`PlanError`
as a failed round and keeps going, so the worst case is a few failed rounds,
never an exception.
"""

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    DefaultRegistryFactory,
    FleetConfig,
    PlanningClient,
    PlanningServer,
    ReplicaFleet,
    RetryPolicy,
    ServiceConfig,
)
from repro.sim import (
    ChurnSpec,
    LivingCluster,
    OnlineRescheduler,
    SimulationConfig,
    SyntheticTrace,
)
from repro.testing import kill_replica

DAY_S = 86400.0


@pytest.fixture
def fleet_server():
    fleet = ReplicaFleet(
        DefaultRegistryFactory(),
        config=FleetConfig(
            num_replicas=2,
            start_method="fork",
            heartbeat_interval_s=0.05,
            supervise_interval_s=0.02,
            restart_backoff_s=0.02,
            retry=RetryPolicy(max_retries=3, backoff_s=0.02),
            seed=0,
        ),
        service_config=ServiceConfig(),
    )
    fleet.start(timeout=60.0)
    server = PlanningServer(fleet, host="127.0.0.1", port=0)
    server.start()
    try:
        yield server, fleet
    finally:
        server.stop()


class TestSimulationSurvivesReplicaKill:
    def test_replica_kill_mid_simulation_degrades_gracefully(self, fleet_server):
        server, fleet = fleet_server
        spec = ClusterSpec(num_pms=6, target_utilization=0.6, best_fit_fraction=0.3)
        state = SnapshotGenerator(spec, seed=4).generate()
        events = SyntheticTrace(ChurnSpec(), seed=5).generate(DAY_S)
        cluster = LivingCluster(state, events, seed=6)
        client = PlanningClient(server.url, retry=RetryPolicy(max_retries=4, backoff_s=0.05))

        killed = []

        def chaos(record):
            # Kill a replica right after the first round completes; the next
            # rounds' requests hit the healing fleet.
            if record.round_index == 0:
                killed.append(kill_replica(fleet, 0))

        config = SimulationConfig(
            planner="ha",
            migration_limit=4,
            replan_every_s=3600.0,
            plan_delay_s=60.0,
            horizon_s=DAY_S,
            max_rounds=4,
        )
        report = OnlineRescheduler(cluster, client.plan, config, on_round=chaos).run()

        assert killed and killed[0] is not None, "no replica was killed"
        assert len(report.rounds) == 4, "the run must complete every round"
        # Retries should mask the kill entirely; tolerate at most one failed
        # round on a slow respawn, and require planning to have recovered.
        assert report.failed_rounds <= 1
        assert report.rounds[-1].ok
        cluster.state.arrays().assert_in_sync(cluster.state)
