"""StepCache parity under sustained external churn (the living-cluster case).

The simulator pushes thousands of events through the cluster's mutation
journal between replanning rounds — drain migrations as journal entries,
arrivals/exits/resizes/PM lifecycle as structural rebuilds.  With the journal
capacity shrunk to a couple of entries, every round overflows repeatedly; a
stale cache hit anywhere would show up as a plan diverging from the
no-cache run.  The whole per-round record stream (plans, objectives,
invalidations) must stay bit-identical with the cache on and off.
"""

import json

import pytest

import repro.cluster.soa as soa
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import ReschedulingService, ServiceConfig, build_default_registry
from repro.sim import (
    ChurnSpec,
    LivingCluster,
    OnlineRescheduler,
    SimulationConfig,
    SyntheticTrace,
)

DAY_S = 86400.0

#: Heavy churn: every structural event family represented, thousands of
#: events over two simulated days on a small cluster.
CHURN = ChurnSpec(
    family="abnormal",
    peak_per_minute=3.0,
    trough_per_minute=0.5,
    resizes_per_hour=4.0,
    drains_per_day=8.0,
    failures_per_day=4.0,
    adds_per_day=12.0,
)


def run_simulation(step_cache, plan_log, capacity=None, monkeypatch=None):
    if capacity is not None:
        monkeypatch.setattr(soa, "JOURNAL_CAPACITY", capacity)
    spec = ClusterSpec(num_pms=8, target_utilization=0.6, best_fit_fraction=0.3)
    state = SnapshotGenerator(spec, seed=11).generate()
    events = SyntheticTrace(CHURN, seed=12).generate(2 * DAY_S)
    assert len(events) > 2000, "churn too light to stress the journal"
    cluster = LivingCluster(state, events, seed=13)
    service = ReschedulingService(
        build_default_registry(include_slow=False, seed=0),
        ServiceConfig(rl_step_cache=step_cache),
    )

    def logging_plan(request):
        reply = service.handle(request)
        plan_log.append([
            (m["vm_id"], m["dest_pm_id"], m["dest_numa_id"]) for m in reply.migrations
        ] if reply.ok else reply.code)
        return reply

    config = SimulationConfig(
        planner="vmr2l",
        migration_limit=4,
        replan_every_s=4 * 3600.0,
        plan_delay_s=300.0,
        horizon_s=2 * DAY_S,
        seed=0,
    )
    report = OnlineRescheduler(cluster, logging_plan, config).run()
    cluster.state.arrays().assert_in_sync(cluster.state)
    return report


class TestStepCacheChurnParity:
    def test_cached_plans_identical_under_journal_overflow(self, monkeypatch):
        cached_plans, fresh_plans = [], []
        cached = run_simulation(True, cached_plans, capacity=2, monkeypatch=monkeypatch)
        fresh = run_simulation(False, fresh_plans, capacity=2, monkeypatch=monkeypatch)
        assert cached_plans == fresh_plans
        assert any(plan for plan in cached_plans), "trivial plans prove nothing"
        assert json.dumps(cached.deterministic_dict(), sort_keys=True) == json.dumps(
            fresh.deterministic_dict(), sort_keys=True
        )

    def test_tiny_capacity_matches_stock_capacity(self, monkeypatch):
        """Overflow handling must not change results vs. the stock journal."""
        stock_plans, tiny_plans = [], []
        stock = run_simulation(True, stock_plans)
        tiny = run_simulation(True, tiny_plans, capacity=1, monkeypatch=monkeypatch)
        assert stock_plans == tiny_plans
        assert json.dumps(stock.deterministic_dict(), sort_keys=True) == json.dumps(
            tiny.deterministic_dict(), sort_keys=True
        )
