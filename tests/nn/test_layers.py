"""Tests for Module, layers, attention blocks, optimizers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Activation,
    Adam,
    CrossAttentionLayer,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    LinearSchedule,
    Module,
    MultiHeadAttention,
    SGD,
    Sequential,
    Tensor,
    TransformerEncoderLayer,
    load_module,
    save_module,
)
from repro.nn import functional as F
from repro.nn import init as initializers


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModule:
    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(3, 4, rng=rng), Activation("relu"), Linear(4, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng=rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self, rng):
        model = MLP(3, [8], 2, rng=rng)
        state = model.state_dict()
        other = MLP(3, [8], 2, rng=np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_load_state_dict_strict_mismatch_raises(self, rng):
        model = Linear(3, 4, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": model.weight.data}, strict=True)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        model = Linear(3, 4, rng=rng)
        bad = model.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_train_eval_mode_propagates(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), Dropout(0.5, rng=rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 5))))
        assert out.shape == (4, 7)

    def test_no_bias(self, rng):
        layer = Linear(5, 7, bias=False, rng=rng)
        assert "bias" not in dict(layer.named_parameters())

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(6, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (2, 3)
        assert layer.bias.grad is not None and layer.bias.grad.shape == (2,)

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng=rng)


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(5.0, 3.0, size=(4, 8)))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradients_flow(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None


class TestMLPAndEmbedding:
    def test_mlp_shapes(self, rng):
        mlp = MLP(6, [16, 16], 3, rng=rng)
        assert mlp(Tensor(rng.normal(size=(10, 6)))).shape == (10, 3)

    def test_mlp_final_activation(self, rng):
        mlp = MLP(4, [8], 2, final_activation="sigmoid", rng=rng)
        out = mlp(Tensor(rng.normal(size=(5, 4)))).numpy()
        assert ((out >= 0) & (out <= 1)).all()

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.numpy()[1], out.numpy()[2])

    def test_embedding_out_of_range_raises(self, rng):
        emb = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_dropout_inactive_in_eval(self, rng):
        drop = Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(drop(x).numpy(), np.ones((3, 3)))

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng=rng)
        x = Tensor(rng.normal(size=(6, 16)))
        assert attn(x, x, x).shape == (6, 16)

    def test_embed_dim_must_divide_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng=rng)

    def test_mask_blocks_information_flow(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        query = Tensor(rng.normal(size=(2, 8)))
        keys_a = rng.normal(size=(3, 8))
        keys_b = keys_a.copy()
        keys_b[2] += 100.0  # huge perturbation on a masked key
        mask = np.array([[True, True, False], [True, True, False]])
        out_a = attn(query, Tensor(keys_a), Tensor(keys_a), mask=mask).numpy()
        out_b = attn(query, Tensor(keys_b), Tensor(keys_b), mask=mask).numpy()
        np.testing.assert_allclose(out_a, out_b, atol=1e-8)

    def test_fully_masked_query_gets_zero_output(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(3, 8)))
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, :] = True
        out = attn(x, x, x, mask=mask).numpy()
        # Rows 1-2 have no allowed keys; their pre-projection context is zero,
        # so the output equals the output projection bias.
        np.testing.assert_allclose(out[1], out[2], atol=1e-10)

    def test_returns_attention_weights(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 8)))
        out, weights = attn(x, x, x, return_weights=True)
        assert weights.shape == (4, 4)
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_encoder_layer_preserves_shape(self, rng):
        layer = TransformerEncoderLayer(16, 4, rng=rng)
        x = Tensor(rng.normal(size=(5, 16)))
        assert layer(x).shape == (5, 16)

    def test_cross_attention_shapes_and_weights(self, rng):
        layer = CrossAttentionLayer(16, 4, rng=rng)
        queries = Tensor(rng.normal(size=(3, 16)))
        keys = Tensor(rng.normal(size=(7, 16)))
        out, weights = layer(queries, keys, return_weights=True)
        assert out.shape == (3, 16)
        assert weights.shape == (3, 7)

    def test_gradients_flow_through_attention(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        attn(x, x, x).sum().backward()
        assert x.grad is not None
        assert attn.q_proj.weight.grad is not None


class TestOptimizers:
    def _loss(self, model, x, y):
        pred = model(x)
        diff = pred - y
        return (diff * diff).mean()

    def test_sgd_reduces_loss_on_regression(self, rng):
        model = Linear(3, 1, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        x = Tensor(rng.normal(size=(32, 3)))
        true_w = rng.normal(size=(3, 1))
        y = Tensor(x.numpy() @ true_w)
        initial = self._loss(model, x, y).item()
        for _ in range(200):
            optimizer.zero_grad()
            loss = self._loss(model, x, y)
            loss.backward()
            optimizer.step()
        assert loss.item() < initial * 0.1

    def test_adam_reduces_loss_on_regression(self, rng):
        model = MLP(3, [16], 1, rng=rng)
        optimizer = Adam(model.parameters(), lr=1e-2)
        x = Tensor(rng.normal(size=(64, 3)))
        y = Tensor(np.sin(x.numpy().sum(axis=1, keepdims=True)))
        initial = self._loss(model, x, y).item()
        for _ in range(150):
            optimizer.zero_grad()
            loss = self._loss(model, x, y)
            loss.backward()
            optimizer.step()
        assert loss.item() < initial * 0.5

    def test_optimizer_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=1e-3)

    def test_invalid_lr_raises(self, rng):
        with pytest.raises(ValueError):
            SGD(Linear(2, 2, rng=rng).parameters(), lr=-1.0)

    def test_clip_gradients(self, rng):
        model = Linear(3, 3, rng=rng)
        optimizer = Adam(model.parameters(), lr=1e-3)
        out = model(Tensor(rng.normal(size=(4, 3)) * 100))
        (out * out).sum().backward()
        norm_before = optimizer.clip_gradients(max_norm=1.0)
        assert norm_before > 1.0
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        total = np.sqrt(sum(float((g ** 2).sum()) for g in grads))
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_adam_state_dict_roundtrip(self, rng):
        model = Linear(2, 2, rng=rng)
        optimizer = Adam(model.parameters(), lr=1e-3)
        out = model(Tensor(rng.normal(size=(4, 2))))
        out.sum().backward()
        optimizer.step()
        state = optimizer.state_dict()
        other = Adam(model.parameters(), lr=1e-3)
        other.load_state_dict(state)
        assert other._step_count == 1

    def test_linear_schedule(self):
        schedule = LinearSchedule(1.0, 0.0, total_steps=10)
        assert schedule.value(0) == pytest.approx(1.0)
        assert schedule.value(5) == pytest.approx(0.5)
        assert schedule.value(10) == pytest.approx(0.0)
        assert schedule.value(20) == pytest.approx(0.0)


class TestInitializers:
    def test_orthogonal_produces_orthonormal_rows(self, rng):
        w = initializers.orthogonal((4, 8), rng)
        gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_xavier_uniform_within_limit(self, rng):
        w = initializers.xavier_uniform((20, 30), rng)
        limit = np.sqrt(6.0 / 50)
        assert np.abs(w).max() <= limit + 1e-12

    def test_unknown_initializer_raises(self):
        with pytest.raises(ValueError):
            initializers.get_initializer("nope")


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path, rng):
        model = MLP(4, [8], 2, rng=rng)
        path = save_module(model, tmp_path / "ckpt", metadata={"step": 7})
        clone = MLP(4, [8], 2, rng=np.random.default_rng(123))
        meta = load_module(clone, path)
        assert meta == {"step": 7}
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_checkpoint_under_two_megabytes(self, tmp_path, rng):
        """The paper reports VMR2L checkpoints are < 2 MB."""
        from repro.nn import checkpoint_size_bytes

        model = MLP(32, [128, 128], 64, rng=rng)
        path = save_module(model, tmp_path / "small")
        assert checkpoint_size_bytes(path) < 2 * 1024 * 1024
