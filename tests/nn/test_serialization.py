"""Atomic-write + digest-verification contracts of checkpoint serialization.

A crash mid-save must never leave a torn checkpoint that loads silently:
writes go through a temp file + ``os.replace``, and the metadata blob carries
a SHA-256 digest of every parameter array that ``load_module`` verifies
before any weight touches the module.
"""

import os

import numpy as np
import pytest

from repro.nn import (
    CheckpointCorruptError,
    Linear,
    load_module,
    save_module,
    verify_checkpoint,
)


def make_model(seed=0):
    return Linear(6, 4, rng=np.random.default_rng(seed))


class TestAtomicWrites:
    def test_round_trip_with_metadata(self, tmp_path):
        model = make_model(seed=1)
        path = save_module(model, tmp_path / "ckpt", metadata={"step": 7})
        clone = make_model(seed=2)
        metadata = load_module(clone, path)
        assert metadata == {"step": 7}  # the digest key is stripped
        for ours, theirs in zip(model.parameters(), clone.parameters()):
            np.testing.assert_array_equal(ours.data, theirs.data)

    def test_overwrite_is_atomic_no_temp_residue(self, tmp_path):
        model = make_model()
        path = save_module(model, tmp_path / "ckpt")
        save_module(make_model(seed=3), path)  # overwrite in place
        leftovers = [name for name in os.listdir(tmp_path) if name != path.name]
        assert leftovers == []

    def test_reserved_digest_metadata_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_module(make_model(), tmp_path / "ckpt",
                        metadata={"__checkpoint_digest__": "nope"})


class TestDigestVerification:
    def test_verify_checkpoint_true_for_intact(self, tmp_path):
        path = save_module(make_model(), tmp_path / "ckpt")
        assert verify_checkpoint(path)

    def test_truncated_checkpoint_raises_not_loads(self, tmp_path):
        path = save_module(make_model(), tmp_path / "ckpt")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # a torn write, pre-atomicity
        clone = make_model(seed=9)
        before = [param.data.copy() for param in clone.parameters()]
        with pytest.raises(CheckpointCorruptError):
            load_module(clone, path)
        for param, snapshot in zip(clone.parameters(), before):
            np.testing.assert_array_equal(param.data, snapshot)  # untouched
        assert not verify_checkpoint(path)

    def test_flipped_parameter_bytes_detected(self, tmp_path):
        model = make_model()
        path = save_module(model, tmp_path / "ckpt")
        # Re-write the archive with one parameter perturbed but the original
        # (now stale) digest — simulates on-disk corruption of weight bytes.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        param_names = [name for name in arrays if name != "__metadata__"]
        arrays[param_names[0]] = arrays[param_names[0]] + 1e-3
        np.savez(path.with_suffix(""), **arrays)
        with pytest.raises(CheckpointCorruptError, match="digest"):
            load_module(make_model(seed=4), path)
        assert not verify_checkpoint(path)

    def test_verify_false_skips_digest_check(self, tmp_path):
        model = make_model()
        path = save_module(model, tmp_path / "ckpt")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        param_names = [name for name in arrays if name != "__metadata__"]
        arrays[param_names[0]] = arrays[param_names[0]] * 2.0
        np.savez(path.with_suffix(""), **arrays)
        clone = make_model(seed=5)
        load_module(clone, path, verify=False)  # explicit opt-out still loads

    def test_pre_digest_checkpoints_still_load(self, tmp_path):
        # A checkpoint written without any digest (the old format) loads fine.
        model = make_model()
        arrays = dict(model.state_dict())
        arrays["__metadata__"] = np.frombuffer(b'{"step": 3}', dtype=np.uint8)
        path = tmp_path / "legacy.npz"
        np.savez(path.with_suffix(""), **arrays)
        clone = make_model(seed=6)
        metadata = load_module(clone, path)
        assert metadata == {"step": 3}
        assert verify_checkpoint(path)  # nothing to compare against
