"""Unit and property-based tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concatenate, stack, where


def numerical_grad(fn, x, eps=1e-6):
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestBasics:
    def test_wraps_array_and_exposes_shape(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_removes_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_backward_on_non_scalar_without_grad_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        t = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            t.backward()


class TestArithmeticGradients:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_mul_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2)

    def test_pow_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2)

    def test_broadcast_add_grad_sums_over_broadcast_axis(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_rsub_and_neg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (5.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, -np.ones(2))

    def test_scalar_mul(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (3.0 * a).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(2, 3.0))


class TestMatmul:
    def test_matmul_2d_grads(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a @ b).sum().backward()

        expected_a = numerical_grad(lambda x: (x @ b_val).sum(), a_val.copy())
        expected_b = numerical_grad(lambda x: (a_val @ x).sum(), b_val.copy())
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_matmul_3d_batched(self):
        rng = np.random.default_rng(1)
        a_val = rng.normal(size=(2, 3, 4))
        b_val = rng.normal(size=(2, 4, 5))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a @ b).sum().backward()

        expected_a = numerical_grad(lambda x: (x @ b_val).sum(), a_val.copy())
        expected_b = numerical_grad(lambda x: (a_val @ x).sum(), b_val.copy())
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)


class TestShapeOps:
    def test_reshape_grad(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_grad(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        scale = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        (a.transpose() * scale).sum().backward()
        np.testing.assert_allclose(a.grad, scale.data.T)

    def test_swapaxes_grad(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        a.swapaxes(0, 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_getitem_grad(self):
        a = Tensor(np.arange(10, dtype=float), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_fancy_index_grad_accumulates(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        expected = np.array([2.0, 0.0, 0.0, 1.0, 0.0])
        np.testing.assert_allclose(a.grad, expected)

    def test_unsqueeze_squeeze_roundtrip(self):
        a = Tensor(np.ones((3,)), requires_grad=True)
        a.unsqueeze(0).squeeze(0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        a = Tensor(np.arange(4, dtype=float), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_max_grad_routes_to_argmax(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_var_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 5))
        t = Tensor(x)
        np.testing.assert_allclose(t.var(axis=1).numpy(), x.var(axis=1), atol=1e-10)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"])
    def test_gradients_match_finite_differences(self, op):
        rng = np.random.default_rng(3)
        x_val = rng.uniform(0.2, 2.0, size=(5,))
        x = Tensor(x_val.copy(), requires_grad=True)
        getattr(x, op)().sum().backward()

        def forward(v):
            return getattr(Tensor(v.copy()), op)().sum().item()

        expected = numerical_grad(forward, x_val.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-4)

    def test_clip_grad_zero_outside_range(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestGraphOps:
    def test_concatenate_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * Tensor(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(b.grad, [4.0, 5.0])

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_where_grad_routes_by_condition(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        cond = np.array([True, False, True, False])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0, 1.0])

    def test_grad_accumulates_when_tensor_reused(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestPropertyBased:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_grad_is_ones(self, x):
        t = Tensor(x.copy(), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(4,),
            elements=st.floats(-5, 5, allow_nan=False),
        ),
        hnp.arrays(
            dtype=np.float64,
            shape=(4,),
            elements=st.floats(-5, 5, allow_nan=False),
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes_in_value_and_grad(self, x, y):
        a1 = Tensor(x.copy(), requires_grad=True)
        b1 = Tensor(y.copy(), requires_grad=True)
        (a1 + b1).sum().backward()
        a2 = Tensor(x.copy(), requires_grad=True)
        b2 = Tensor(y.copy(), requires_grad=True)
        (b2 + a2).sum().backward()
        np.testing.assert_allclose(a1.grad, a2.grad)
        np.testing.assert_allclose(b1.grad, b2.grad)
