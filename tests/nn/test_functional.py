"""Tests for repro.nn.functional: softmax family, losses, distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.numpy().sum(axis=-1), [1.0, 1.0])

    def test_softmax_is_shift_invariant(self):
        logits = np.array([1.0, 2.0, 3.0])
        p1 = F.softmax(Tensor(logits)).numpy()
        p2 = F.softmax(Tensor(logits + 100.0)).numpy()
        np.testing.assert_allclose(p1, p2, atol=1e-12)

    def test_softmax_handles_large_values(self):
        probs = F.softmax(Tensor(np.array([1e4, 0.0, -1e4]))).numpy()
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(logits).numpy(),
            np.log(F.softmax(logits).numpy()),
            atol=1e-10,
        )

    def test_softmax_gradient_matches_analytic(self):
        logits = Tensor(np.array([0.5, -0.3, 1.2]), requires_grad=True)
        probs = F.softmax(logits)
        probs[0].backward()
        p = F.softmax(Tensor(logits.data)).numpy()
        expected = p[0] * (np.eye(3)[0] - p)
        np.testing.assert_allclose(logits.grad, expected, atol=1e-8)


class TestMaskedSoftmax:
    def test_masked_entries_get_zero_probability(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        mask = np.array([True, False, True, False])
        probs = F.masked_softmax(logits, mask).numpy()
        assert probs[1] == pytest.approx(0.0, abs=1e-9)
        assert probs[3] == pytest.approx(0.0, abs=1e-9)
        assert probs.sum() == pytest.approx(1.0)

    def test_unmasked_reduces_to_softmax(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(
            F.masked_softmax(logits, None).numpy(), F.softmax(logits).numpy()
        )

    def test_all_masked_returns_uniform_without_nan(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0]))
        probs = F.masked_softmax(logits, np.zeros(3, dtype=bool)).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs, np.full(3, 1 / 3))

    def test_single_feasible_entry_gets_probability_one(self):
        logits = Tensor(np.array([-5.0, 10.0, 3.0]))
        mask = np.array([False, False, True])
        probs = F.masked_softmax(logits, mask).numpy()
        np.testing.assert_allclose(probs, [0.0, 0.0, 1.0], atol=1e-9)

    @given(
        hnp.arrays(dtype=np.float64, shape=(6,), elements=st.floats(-20, 20, allow_nan=False)),
        hnp.arrays(dtype=np.bool_, shape=(6,)),
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_softmax_properties(self, logits, mask):
        probs = F.masked_softmax(Tensor(logits), mask).numpy()
        assert np.all(probs >= -1e-12)
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)
        if mask.any():
            assert probs[~mask].sum() == pytest.approx(0.0, abs=1e-6)


class TestLosses:
    def test_mse_loss_zero_for_identical(self):
        x = Tensor(np.arange(5, dtype=float))
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == pytest.approx(0.0)

    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([3.0, 2.0]))
        assert F.mse_loss(pred, target).item() == pytest.approx(2.0)

    def test_huber_equals_mse_half_for_small_errors(self):
        pred = Tensor(np.array([0.1, -0.2]), requires_grad=True)
        target = Tensor(np.zeros(2))
        huber = F.huber_loss(pred, target, delta=1.0).item()
        assert huber == pytest.approx(0.5 * (0.01 + 0.04) / 2)

    def test_huber_linear_for_large_errors(self):
        pred = Tensor(np.array([10.0]))
        target = Tensor(np.zeros(1))
        assert F.huber_loss(pred, target, delta=1.0).item() == pytest.approx(9.5)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy_with_logits(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)


class TestCategoricalHelpers:
    def test_log_prob_matches_softmax(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]))
        lp = F.categorical_log_prob(logits, np.array([2])).numpy()
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(lp, np.log(probs[:, 2]), atol=1e-10)

    def test_entropy_maximal_for_uniform(self):
        uniform = Tensor(np.zeros((1, 4)))
        peaked = Tensor(np.array([[10.0, 0.0, 0.0, 0.0]]))
        assert F.categorical_entropy(uniform).numpy()[0] > F.categorical_entropy(peaked).numpy()[0]
        assert F.categorical_entropy(uniform).numpy()[0] == pytest.approx(np.log(4), abs=1e-6)

    def test_entropy_with_mask_ignores_masked_entries(self):
        logits = Tensor(np.zeros((1, 4)))
        mask = np.array([[True, True, False, False]])
        ent = F.categorical_entropy(logits, mask).numpy()[0]
        assert ent == pytest.approx(np.log(2), abs=1e-6)

    def test_sample_categorical_greedy(self):
        rng = np.random.default_rng(0)
        assert F.sample_categorical(np.array([0.1, 0.7, 0.2]), rng, greedy=True) == 1

    def test_sample_categorical_respects_zero_probability(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.0, 1.0, 0.0])
        samples = {F.sample_categorical(probs, rng) for _ in range(20)}
        assert samples == {1}

    def test_sample_categorical_rejects_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            F.sample_categorical(np.zeros(3), rng)


class TestUtilities:
    def test_explained_variance_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert F.explained_variance(y, y) == pytest.approx(1.0)

    def test_explained_variance_constant_target(self):
        assert F.explained_variance(np.array([1.0, 2.0]), np.array([3.0, 3.0])) == 0.0

    def test_grad_norm(self):
        assert F.grad_norm([np.array([3.0, 4.0]), None]) == pytest.approx(5.0)
        assert F.grad_norm([None]) == 0.0

    def test_get_activation_unknown_raises(self):
        with pytest.raises(ValueError):
            F.get_activation("swishy")

    def test_gelu_close_to_relu_for_large_inputs(self):
        x = Tensor(np.array([10.0, -10.0]))
        out = F.gelu(x).numpy()
        np.testing.assert_allclose(out, [10.0, 0.0], atol=1e-3)
