"""Parity suite: chunked streaming-softmax attention vs the dense kernel.

The chunked kernel must compute the same function as the dense reference —
forward and gradients, float64 and float32 — across chunk sizes, masks,
batched/single layouts and the full extractor stack.  In no-grad float64 with
one chunk covering every key the dense operation order is replayed exactly,
so the outputs are bit-for-bit identical.
"""

import numpy as np
import pytest

from repro.core.attention import SparseAttentionExtractor
from repro.core.config import ModelConfig
from repro.core.features import build_feature_batch
from repro.env.observation import Observation
from repro.nn import AttentionMask, MultiHeadAttention, Tensor, TransformerEncoderLayer, no_grad


def _pair(chunk_size, compute_dtype=None, seed=3):
    dense = MultiHeadAttention(
        32, 4, rng=np.random.default_rng(seed), compute_dtype=compute_dtype
    )
    chunked = MultiHeadAttention(
        32, 4, rng=np.random.default_rng(seed), compute_dtype=compute_dtype,
        chunk_size=chunk_size,
    )
    return dense, chunked


def _random_mask(rng, q_len, k_len, dead_row=None):
    mask = rng.random((q_len, k_len)) < 0.4
    np.einsum("ii->i", mask[:, :q_len])[: min(q_len, k_len)] = True
    if dead_row is not None:
        mask[dead_row] = False
    return mask


class TestForwardParity:
    @pytest.mark.parametrize("chunk", [1, 3, 16, 64])
    @pytest.mark.parametrize("batched", [False, True])
    def test_no_grad_forward(self, chunk, batched):
        rng = np.random.default_rng(0)
        shape = (3, 41, 32) if batched else (41, 32)
        x = rng.normal(size=shape)
        dense, chunked = _pair(chunk)
        with no_grad():
            out_dense = dense(Tensor(x), Tensor(x), Tensor(x)).data
            out_chunked = chunked(Tensor(x), Tensor(x), Tensor(x)).data
        np.testing.assert_allclose(out_chunked, out_dense, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("batched", [False, True])
    def test_single_chunk_is_bitwise(self, batched):
        """One chunk covering all keys replays the dense op order exactly."""
        rng = np.random.default_rng(1)
        shape = (2, 30, 32) if batched else (30, 32)
        x = rng.normal(size=shape)
        dense, chunked = _pair(chunk_size=10_000)
        with no_grad():
            out_dense = dense(Tensor(x), Tensor(x), Tensor(x)).data
            out_chunked = chunked(Tensor(x), Tensor(x), Tensor(x)).data
        assert np.array_equal(out_chunked, out_dense)

    @pytest.mark.parametrize("chunk", [5, 64])
    def test_masked_with_dead_rows(self, chunk):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(37, 32))
        mask = _random_mask(rng, 37, 37, dead_row=4)
        dense, chunked = _pair(chunk)
        with no_grad():
            out_dense = dense(Tensor(x), Tensor(x), Tensor(x), mask=AttentionMask(mask)).data
            out_chunked = chunked(Tensor(x), Tensor(x), Tensor(x), mask=AttentionMask(mask)).data
        np.testing.assert_allclose(out_chunked, out_dense, rtol=0, atol=1e-12)
        # Dead query rows produce exactly zero context on both kernels.
        assert np.array_equal(out_chunked[4], np.zeros(32)) or np.allclose(out_chunked[4], 0.0)

    def test_cross_attention_shapes(self):
        """Chunking handles q_len != k_len (cross-attention layouts)."""
        rng = np.random.default_rng(3)
        q = rng.normal(size=(11, 32))
        kv = rng.normal(size=(53, 32))
        dense, chunked = _pair(7)
        with no_grad():
            out_dense = dense(Tensor(q), Tensor(kv), Tensor(kv)).data
            out_chunked = chunked(Tensor(q), Tensor(kv), Tensor(kv)).data
        np.testing.assert_allclose(out_chunked, out_dense, rtol=0, atol=1e-12)

    def test_return_weights_falls_back_to_dense(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 32))
        dense, chunked = _pair(6)
        with no_grad():
            out_dense, w_dense = dense(
                Tensor(x), Tensor(x), Tensor(x), return_weights=True
            )
            out_chunked, w_chunked = chunked(
                Tensor(x), Tensor(x), Tensor(x), return_weights=True
            )
        assert np.array_equal(w_chunked, w_dense)
        assert np.array_equal(out_chunked.data, out_dense.data)


class TestGradientParity:
    @pytest.mark.parametrize("chunk", [3, 17, 64])
    @pytest.mark.parametrize("batched", [False, True])
    def test_input_and_parameter_gradients(self, chunk, batched):
        rng = np.random.default_rng(5)
        shape = (2, 29, 32) if batched else (29, 32)
        x = rng.normal(size=shape)
        mask = _random_mask(rng, 29, 29, dead_row=3)
        dense, chunked = _pair(chunk)
        grad = rng.normal(size=shape)

        results = {}
        for name, layer in (("dense", dense), ("chunked", chunked)):
            xt = Tensor(x.copy(), requires_grad=True)
            out = layer(xt, xt, xt, mask=AttentionMask(mask))
            out.backward(grad.copy())
            results[name] = (
                out.data,
                xt.grad,
                {k: p.grad for k, p in layer.named_parameters()},
            )
        np.testing.assert_allclose(results["chunked"][0], results["dense"][0], rtol=0, atol=1e-12)
        np.testing.assert_allclose(results["chunked"][1], results["dense"][1], rtol=0, atol=1e-10)
        for key, dense_grad in results["dense"][2].items():
            np.testing.assert_allclose(
                results["chunked"][2][key], dense_grad, rtol=0, atol=1e-10,
                err_msg=f"parameter {key}",
            )

    def test_float32_compute_dtype(self):
        """The reduced-precision VM↔VM mode works chunked, within f32 slack."""
        rng = np.random.default_rng(6)
        x = rng.normal(size=(33, 32))
        dense, chunked = _pair(8, compute_dtype=np.float32)
        grad = rng.normal(size=(33, 32))
        outs, grads = [], []
        for layer in (dense, chunked):
            xt = Tensor(x.copy(), requires_grad=True)
            out = layer(xt, xt, xt)
            out.backward(grad.copy())
            outs.append(out.data)
            grads.append(xt.grad)
        np.testing.assert_allclose(outs[1], outs[0], rtol=0, atol=1e-5)
        np.testing.assert_allclose(grads[1], grads[0], rtol=0, atol=1e-4)


class TestEncoderLayerAndExtractor:
    def test_encoder_layer_parity(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(45, 32))
        dense = TransformerEncoderLayer(32, 4, 64, rng=np.random.default_rng(8))
        chunked = TransformerEncoderLayer(
            32, 4, 64, rng=np.random.default_rng(8), chunk_size=9
        )
        with no_grad():
            np.testing.assert_allclose(
                chunked(Tensor(x)).data, dense(Tensor(x)).data, rtol=0, atol=1e-12
            )

    @staticmethod
    def _observation(rng, num_pms=6, num_vms=40):
        source = rng.integers(0, num_pms, size=num_vms)
        return Observation(
            pm_features=rng.random((num_pms, 8)),
            vm_features=rng.random((num_vms, 14)),
            vm_source_pm=source,
            vm_mask=np.ones(num_vms, dtype=bool),
            vm_ids=list(range(num_vms)),
            pm_ids=list(range(num_pms)),
            migrations_left=10,
        )

    @pytest.mark.parametrize("grad", [False, True])
    def test_extractor_forward_parity(self, grad):
        """ModelConfig.attention_impl="chunked" matches the dense extractor."""
        rng = np.random.default_rng(9)
        observation = self._observation(rng)
        dense = SparseAttentionExtractor(
            ModelConfig(), rng=np.random.default_rng(10)
        )
        chunked = SparseAttentionExtractor(
            ModelConfig(attention_impl="chunked", attention_chunk_size=8),
            rng=np.random.default_rng(10),
        )
        def run(extractor):
            if grad:
                return extractor(build_feature_batch(observation))
            with no_grad():
                return extractor(build_feature_batch(observation))
        out_dense = run(dense)
        out_chunked = run(chunked)
        np.testing.assert_allclose(
            out_chunked.vm_embeddings.data, out_dense.vm_embeddings.data, rtol=0, atol=1e-10
        )
        np.testing.assert_allclose(
            out_chunked.pm_embeddings.data, out_dense.pm_embeddings.data, rtol=0, atol=1e-10
        )
        np.testing.assert_allclose(
            out_chunked.vm_pm_scores, out_dense.vm_pm_scores, rtol=0, atol=1e-10
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(attention_impl="flash3")
        with pytest.raises(ValueError):
            ModelConfig(attention_chunk_size=0)
        with pytest.raises(ValueError):
            MultiHeadAttention(32, 4, chunk_size=-1)
