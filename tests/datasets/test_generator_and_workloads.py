"""Tests for synthetic snapshot generation, workload levels and dataset I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterState
from repro.datasets import (
    ClusterSpec,
    DatasetMetadata,
    DatasetReader,
    SchemaError,
    SnapshotGenerator,
    WORKLOAD_BANDS,
    build_dataset,
    cpu_usage_cdf,
    cpu_usage_samples,
    daily_arrival_exit_series,
    generate_workload_snapshots,
    get_spec,
    get_workload_level,
    load_mappings,
    mapping_summary,
    offpeak_minute,
    save_mappings,
    small_spec,
    spec_for_workload,
    split_mappings,
    validate_mapping,
)


class TestClusterSpec:
    def test_presets_exist(self):
        assert get_spec("small").num_pms == 24
        assert get_spec("medium").num_pms == 280
        assert get_spec("large").num_pms == 1176
        assert get_spec("multi_resource").multi_resource

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_spec("gigantic")

    def test_invalid_spec_values(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_pms=0)
        with pytest.raises(ValueError):
            ClusterSpec(target_utilization=1.5)
        with pytest.raises(ValueError):
            ClusterSpec(best_fit_fraction=2.0)


class TestSnapshotGenerator:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return SnapshotGenerator(small_spec(), seed=0).generate()

    def test_generates_valid_cluster(self, snapshot):
        assert snapshot.num_pms == 24
        assert snapshot.num_vms > 0
        assert 0.0 <= snapshot.fragment_rate() <= 1.0

    def test_resource_conservation(self, snapshot):
        total_capacity = sum(pm.cpu_capacity for pm in snapshot.pms.values())
        total_free = sum(pm.free_cpu for pm in snapshot.pms.values())
        total_used = sum(vm.cpu for vm in snapshot.vms.values() if vm.is_placed)
        assert total_free + total_used == pytest.approx(total_capacity)

    def test_utilization_near_target(self):
        spec = small_spec(target_utilization=0.6)
        states = SnapshotGenerator(spec, seed=1).generate_many(3)
        for state in states:
            assert 0.4 <= state.cpu_utilization() <= 0.8

    def test_snapshots_are_reproducible_across_seeds(self):
        a = SnapshotGenerator(small_spec(), seed=7).generate()
        b = SnapshotGenerator(small_spec(), seed=7).generate()
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = SnapshotGenerator(small_spec(), seed=1).generate()
        b = SnapshotGenerator(small_spec(), seed=2).generate()
        assert a.to_dict() != b.to_dict()

    def test_multi_resource_snapshot_has_two_pm_flavors(self):
        spec = get_spec("multi_resource", num_pms=30)
        state = SnapshotGenerator(spec, seed=0).generate()
        capacities = {pm.pm_type.name for pm in state.pms.values()}
        assert capacities == {"pm-88c-256g", "pm-128c-364g"}

    def test_affinity_groups_generated(self):
        spec = ClusterSpec(num_pms=12, affinity_groups=3, affinity_group_size=2)
        state = SnapshotGenerator(spec, seed=0).generate()
        grouped = [vm for vm in state.vms.values() if vm.anti_affinity_group is not None]
        assert len(grouped) == 6

    def test_generate_many_count_validation(self):
        with pytest.raises(ValueError):
            SnapshotGenerator(small_spec(), seed=0).generate_many(0)

    def test_snapshot_has_fragmentation_to_repair(self, snapshot):
        """The generator must leave fragments, otherwise VMR has nothing to do."""
        assert snapshot.fragment_rate() > 0.05


class TestWorkloads:
    def test_bands_are_non_overlapping(self):
        bands = sorted(WORKLOAD_BANDS.values())
        for (lo1, hi1), (lo2, hi2) in zip(bands[:-1], bands[1:]):
            assert hi1 < lo2

    def test_get_workload_level_aliases(self):
        assert get_workload_level("L").name == "low"
        assert get_workload_level("medium").name == "middle"
        assert get_workload_level("H").name == "high"
        with pytest.raises(KeyError):
            get_workload_level("extreme")

    def test_spec_for_workload_targets_band(self):
        for level in ("low", "middle", "high"):
            spec = spec_for_workload(level)
            band = get_workload_level(level)
            assert band.min_utilization <= spec.target_utilization <= band.max_utilization

    def test_generated_workloads_separate(self):
        low = generate_workload_snapshots("low", 2, seed=0)
        high = generate_workload_snapshots("high", 2, seed=0)
        assert max(s.cpu_utilization() for s in low) < min(s.cpu_utilization() for s in high)

    def test_cpu_usage_cdf_monotone(self):
        states = generate_workload_snapshots("middle", 2, seed=0)
        cdf = cpu_usage_cdf(states)
        assert np.all(np.diff(cdf["cdf"]) >= -1e-12)
        assert cdf["cdf"][-1] == pytest.approx(1.0)

    def test_cpu_usage_samples_counts(self):
        states = generate_workload_snapshots("low", 2, seed=0)
        samples = cpu_usage_samples(states)
        assert samples.size == sum(s.num_pms for s in states)

    def test_daily_series_peak_and_offpeak(self):
        series = daily_arrival_exit_series(seed=0, days=3)
        assert series["total"].shape == (24 * 60,)
        trough_minute = offpeak_minute(series)
        # The off-peak minute should fall in the early morning (before 9 am),
        # matching the paper's statement that VMR runs in early mornings.
        assert trough_minute < 9 * 60 or trough_minute > 22 * 60
        assert series["total"].max() > 4 * series["total"].min()

    def test_daily_series_invalid_days(self):
        with pytest.raises(ValueError):
            daily_arrival_exit_series(days=0)


class TestSchemaAndIO:
    def test_validate_mapping_accepts_generated(self):
        state = SnapshotGenerator(small_spec(), seed=0).generate()
        validate_mapping(state.to_dict())

    def test_validate_mapping_rejects_bad_docs(self):
        with pytest.raises(SchemaError):
            validate_mapping({"pms": []})
        with pytest.raises(SchemaError):
            validate_mapping({"pms": [{"pm_id": 0, "cpu": 10, "memory": 10}], "vms": [{"vm_id": 0}]})

    def test_mapping_summary(self):
        state = SnapshotGenerator(small_spec(), seed=0).generate()
        summary = mapping_summary(state.to_dict())
        assert summary["num_pms"] == 24
        assert 0.0 < summary["cpu_utilization"] < 1.0

    def test_save_load_roundtrip(self, tmp_path):
        states = SnapshotGenerator(small_spec(), seed=0).generate_many(3)
        path = save_mappings(states, tmp_path / "maps.jsonl")
        loaded = load_mappings(path)
        assert len(loaded) == 3
        assert loaded[0].fragment_rate() == pytest.approx(states[0].fragment_rate())

    def test_load_with_limit(self, tmp_path):
        states = SnapshotGenerator(small_spec(), seed=0).generate_many(3)
        path = save_mappings(states, tmp_path / "maps.jsonl")
        assert len(load_mappings(path, limit=2)) == 2


class TestSplitsAndDatasetBuild:
    def test_split_fractions(self):
        states = SnapshotGenerator(small_spec(), seed=0).generate_many(10)
        splits = split_mappings(states, {"train": 0.8, "validation": 0.1, "test": 0.1}, seed=0)
        assert len(splits["train"]) == 8
        assert len(splits["validation"]) == 1
        assert len(splits["test"]) == 1

    def test_split_fractions_must_sum_to_one(self):
        states = SnapshotGenerator(small_spec(), seed=0).generate_many(2)
        with pytest.raises(ValueError):
            split_mappings(states, {"train": 0.5, "test": 0.1})

    def test_split_requires_train(self):
        states = SnapshotGenerator(small_spec(), seed=0).generate_many(2)
        with pytest.raises(ValueError):
            split_mappings(states, {"validation": 0.5, "test": 0.5})

    def test_build_dataset_roundtrip(self, tmp_path):
        splits, root = build_dataset(
            small_spec(),
            num_mappings=6,
            root=tmp_path / "ds",
            seed=0,
            fractions={"train": 0.5, "validation": 0.25, "test": 0.25},
        )
        assert root is not None
        reader = DatasetReader(root)
        assert set(reader.available_splits()) == {"train", "validation", "test"}
        train = reader.load_split("train")
        assert len(train) == len(splits["train"])
        assert isinstance(reader.metadata, DatasetMetadata)
        assert reader.metadata.num_mappings == 6

    def test_build_dataset_in_memory_only(self):
        splits, root = build_dataset(small_spec(), num_mappings=4, seed=0,
                                     fractions={"train": 0.75, "test": 0.25})
        assert root is None
        assert len(splits["train"]) + len(splits["test"]) == 4

    def test_reader_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetReader(tmp_path / "nonexistent")


class TestPropertyBased:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_produces_valid_snapshot(self, seed):
        state = SnapshotGenerator(ClusterSpec(num_pms=8), seed=seed).generate()
        validate_mapping(state.to_dict())
        assert 0.0 <= state.fragment_rate() <= 1.0
        roundtrip = ClusterState.from_dict(state.to_dict())
        assert roundtrip.fragment_rate() == pytest.approx(state.fragment_rate())
