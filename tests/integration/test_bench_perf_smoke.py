"""Smoke-run the hot-path benchmark so regressions surface in tier-1 CI.

Runs ``benchmarks/bench_perf_hotpaths.py`` in smoke mode (tiny cluster, few
repeats) and checks the payload shape; absolute timings are hardware-dependent
so only structural properties are asserted here.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_perf_hotpaths.py"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_perf_hotpaths", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_perf_hotpaths_smoke(tmp_path):
    bench = _load_bench_module()
    output = tmp_path / "BENCH_perf_hotpaths.json"
    payload = bench.run(smoke=True, output=output)
    assert output.exists()
    assert payload["smoke"] is True
    results = payload["results"]
    for name in (
        "destination_mask",
        "movable_vm_mask",
        "observation_build",
        "cluster_state_copy",
        "ppo_rollout_epoch",
        "ppo_update_epoch",
        "vm_attention_large",
        "act_large_inference",
        "rollout_cached_steps",
    ):
        entry = results[name]
        assert entry["legacy_s"] > 0
        assert entry["vectorized_s"] > 0
        assert entry["speedup"] > 0
    # The O(V·P)-loop paths must beat the reference even at smoke scale
    # (destination_mask's fixed numpy overhead can tie at tiny sizes, so it is
    # only checked structurally above; at real scale it is >20x faster).
    assert results["movable_vm_mask"]["speedup"] > 1.0
    assert results["observation_build"]["speedup"] > 1.0
