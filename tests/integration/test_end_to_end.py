"""End-to-end integration tests across datasets, env, baselines, core and analysis."""

import numpy as np
import pytest

from repro.analysis import compare_algorithms, render_trace, trace_plan
from repro.baselines import FilteringHeuristic, MIPRescheduler, evaluate_plan
from repro.cluster import ConstraintConfig, apply_plan
from repro.core import ModelConfig, PPOConfig, RiskSeekingConfig, VMR2LAgent, VMR2LConfig
from repro.datasets import ClusterSpec, DatasetReader, build_dataset
from repro.env import VMRescheduleEnv


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("ds")
    splits, written = build_dataset(
        ClusterSpec(num_pms=6, target_utilization=0.72),
        num_mappings=6,
        root=root,
        seed=0,
        fractions={"train": 0.5, "validation": 0.25, "test": 0.25},
    )
    return written


def test_dataset_to_plan_pipeline(dataset):
    """Load a persisted dataset, plan with HA and MIP, and apply the plans."""
    reader = DatasetReader(dataset)
    train = reader.load_split("train")
    test = reader.load_split("test")
    assert train and test
    state = test[0]
    rows = compare_algorithms(state, [FilteringHeuristic(), MIPRescheduler(time_limit_s=20)], [4])
    by_algo = {row.algorithm: row for row in rows}
    assert by_algo["MIP"].fragment_rate <= by_algo["HA"].fragment_rate + 1e-6


def test_dataset_to_agent_pipeline(dataset):
    """Train a tiny agent on the persisted train split and plan on the test split."""
    reader = DatasetReader(dataset)
    train = reader.load_split("train")
    test = reader.load_split("test")
    config = VMR2LConfig(
        model=ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32),
        ppo=PPOConfig(rollout_steps=16, minibatch_size=8, update_epochs=1),
        risk_seeking=RiskSeekingConfig(num_trajectories=2),
        migration_limit=4,
    )
    agent = VMR2LAgent(config, constraint_config=ConstraintConfig(migration_limit=4), seed=0)
    agent.train_on_states(train, total_steps=16)
    result = agent.compute_plan(test[0], migration_limit=4)
    evaluation = evaluate_plan(test[0], result)
    assert evaluation.num_skipped == 0
    # The plan can be visualized step by step (the Fig. 21 tool).
    traces = trace_plan(test[0], result.plan)
    if traces:
        assert "step 1" in render_trace(traces, max_steps=1)


def test_env_rollout_matches_plan_application(dataset):
    """Stepping the env and applying the executed plan to a copy agree on FR."""
    reader = DatasetReader(dataset)
    state = reader.load_split("validation")[0]
    env = VMRescheduleEnv(state, ConstraintConfig(migration_limit=3))
    observation = env.reset()
    done = False
    while not done:
        mask = env.vm_action_mask()
        if not mask.any():
            break
        vm_index = int(np.argmax(mask))
        pm_mask = env.pm_action_mask(vm_index)
        if not pm_mask.any():
            break
        observation, _, done, _ = env.step((vm_index, int(np.argmax(pm_mask))))
    replayed, result = apply_plan(state, env.executed_plan(), skip_infeasible=False)
    assert replayed.fragment_rate() == pytest.approx(env.fragment_rate())
    assert result.num_applied == len(env.executed_plan())
