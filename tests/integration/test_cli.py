"""Tests for the command-line interface (generate-dataset / train / evaluate / plan / serve)."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_mappings
from repro.serve import PlanRequest


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli") / "dataset"
    exit_code = main(
        [
            "generate-dataset",
            "--output", str(root),
            "--preset", "small",
            "--num-pms", "6",
            "--num-mappings", "6",
            "--seed", "0",
        ]
    )
    assert exit_code == 0
    return root


@pytest.fixture(scope="module")
def checkpoint(dataset_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_ckpt") / "agent.npz"
    exit_code = main(
        [
            "train",
            "--dataset", str(dataset_dir),
            "--checkpoint", str(path),
            "--total-steps", "16",
            "--migration-limit", "4",
        ]
    )
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_generate(self):
        args = build_parser().parse_args(["generate-dataset", "--output", "x"])
        assert args.command == "generate-dataset"
        assert args.preset == "small"


class TestGenerateDataset:
    def test_creates_split_files(self, dataset_dir):
        assert (dataset_dir / "metadata.json").exists()
        assert (dataset_dir / "train.jsonl").exists()
        assert (dataset_dir / "test.jsonl").exists()

    def test_workload_option(self, tmp_path, capsys):
        root = tmp_path / "low"
        main(
            [
                "generate-dataset",
                "--output", str(root),
                "--workload", "low",
                "--num-pms", "5",
                "--num-mappings", "4",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["num_pms"] == 5


class TestTrainEvaluatePlan:
    def test_train_writes_checkpoint(self, checkpoint):
        assert Path(checkpoint).exists()
        assert Path(checkpoint).stat().st_size < 2 * 1024 * 1024

    def test_evaluate_with_baseline_and_checkpoint(self, dataset_dir, checkpoint, capsys):
        main(
            [
                "evaluate",
                "--dataset", str(dataset_dir),
                "--checkpoint", str(checkpoint),
                "--baselines", "ha",
                "--migration-limit", "4",
                "--max-mappings", "1",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        algorithms = {row["algorithm"] for row in rows}
        assert {"HA", "VMR2L"} <= algorithms
        for row in rows:
            assert 0.0 <= row["mean_fragment_rate"] <= 1.0

    def test_evaluate_rejects_unknown_baseline(self, dataset_dir):
        with pytest.raises(SystemExit):
            main(["evaluate", "--dataset", str(dataset_dir), "--baselines", "quantum"])

    def test_plan_on_single_mapping(self, dataset_dir, capsys):
        mapping_file = dataset_dir / "test.jsonl"
        main(
            [
                "plan",
                "--mapping", str(mapping_file),
                "--migration-limit", "4",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["algorithm"] == "HA"
        assert rows[0]["final_fragment_rate"] <= rows[0]["initial_fragment_rate"] + 1e-9

    def test_plan_visualize_text_output(self, dataset_dir, capsys):
        mapping_file = dataset_dir / "test.jsonl"
        main(["plan", "--mapping", str(mapping_file), "--migration-limit", "4", "--visualize"])
        output = capsys.readouterr().out
        assert "plan summary" in output

    def test_plan_with_explicit_planner(self, dataset_dir, capsys):
        mapping_file = dataset_dir / "test.jsonl"
        main(
            [
                "plan",
                "--mapping", str(mapping_file),
                "--planner", "vbpp",
                "--migration-limit", "4",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["algorithm"] == "alpha-VBPP"

    def test_evaluate_accepts_new_registry_keys(self, dataset_dir, capsys):
        main(
            [
                "evaluate",
                "--dataset", str(dataset_dir),
                "--baselines", "ha,vbpp,random",
                "--migration-limit", "4",
                "--max-mappings", "1",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert {row["algorithm"] for row in rows} == {"HA", "alpha-VBPP", "Random"}


class TestServe:
    def test_serve_once_from_request_file(self, dataset_dir, tmp_path, capsys):
        state = load_mappings(dataset_dir / "test.jsonl", limit=1)[0]
        request = PlanRequest.from_state(state, planner="ha", migration_limit=4)
        request_file = tmp_path / "request.json"
        request_file.write_text(request.to_json())
        exit_code = main(
            ["serve", "--once", "--request", str(request_file), "--fast-only", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["planner"] == "HA"
        assert payload["request_id"] == request.request_id
        assert payload["metrics"]["latency_ms"] >= 0.0

    def test_serve_once_with_checkpoint(self, dataset_dir, checkpoint, tmp_path, capsys):
        state = load_mappings(dataset_dir / "test.jsonl", limit=1)[0]
        request = PlanRequest.from_state(state, planner="rl", migration_limit=4)
        request_file = tmp_path / "request.json"
        request_file.write_text(request.to_json())
        main(
            [
                "serve", "--once",
                "--request", str(request_file),
                "--checkpoint", str(checkpoint),
                "--fast-only", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["planner"] == "VMR2L"
        assert payload["num_migrations"] <= 4

    def test_serve_once_reports_structured_errors(self, dataset_dir, tmp_path, capsys):
        state = load_mappings(dataset_dir / "test.jsonl", limit=1)[0]
        request = PlanRequest.from_state(state, planner="quantum")
        request_file = tmp_path / "request.json"
        request_file.write_text(request.to_json())
        main(["serve", "--once", "--request", str(request_file), "--fast-only", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["code"] == "unknown_planner"
