"""Tests for the command-line interface (generate-dataset / train / evaluate / plan)."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli") / "dataset"
    exit_code = main(
        [
            "generate-dataset",
            "--output", str(root),
            "--preset", "small",
            "--num-pms", "6",
            "--num-mappings", "6",
            "--seed", "0",
        ]
    )
    assert exit_code == 0
    return root


@pytest.fixture(scope="module")
def checkpoint(dataset_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_ckpt") / "agent.npz"
    exit_code = main(
        [
            "train",
            "--dataset", str(dataset_dir),
            "--checkpoint", str(path),
            "--total-steps", "16",
            "--migration-limit", "4",
        ]
    )
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_generate(self):
        args = build_parser().parse_args(["generate-dataset", "--output", "x"])
        assert args.command == "generate-dataset"
        assert args.preset == "small"


class TestGenerateDataset:
    def test_creates_split_files(self, dataset_dir):
        assert (dataset_dir / "metadata.json").exists()
        assert (dataset_dir / "train.jsonl").exists()
        assert (dataset_dir / "test.jsonl").exists()

    def test_workload_option(self, tmp_path, capsys):
        root = tmp_path / "low"
        main(
            [
                "generate-dataset",
                "--output", str(root),
                "--workload", "low",
                "--num-pms", "5",
                "--num-mappings", "4",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["num_pms"] == 5


class TestTrainEvaluatePlan:
    def test_train_writes_checkpoint(self, checkpoint):
        assert Path(checkpoint).exists()
        assert Path(checkpoint).stat().st_size < 2 * 1024 * 1024

    def test_evaluate_with_baseline_and_checkpoint(self, dataset_dir, checkpoint, capsys):
        main(
            [
                "evaluate",
                "--dataset", str(dataset_dir),
                "--checkpoint", str(checkpoint),
                "--baselines", "ha",
                "--migration-limit", "4",
                "--max-mappings", "1",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        algorithms = {row["algorithm"] for row in rows}
        assert {"HA", "VMR2L"} <= algorithms
        for row in rows:
            assert 0.0 <= row["mean_fragment_rate"] <= 1.0

    def test_evaluate_rejects_unknown_baseline(self, dataset_dir):
        with pytest.raises(SystemExit):
            main(["evaluate", "--dataset", str(dataset_dir), "--baselines", "quantum"])

    def test_plan_on_single_mapping(self, dataset_dir, capsys):
        mapping_file = dataset_dir / "test.jsonl"
        main(
            [
                "plan",
                "--mapping", str(mapping_file),
                "--migration-limit", "4",
                "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["algorithm"] == "HA"
        assert rows[0]["final_fragment_rate"] <= rows[0]["initial_fragment_rate"] + 1e-9

    def test_plan_visualize_text_output(self, dataset_dir, capsys):
        mapping_file = dataset_dir / "test.jsonl"
        main(["plan", "--mapping", str(mapping_file), "--migration-limit", "4", "--visualize"])
        output = capsys.readouterr().out
        assert "plan summary" in output
