"""Hardened ClusterEvent: validation, dict round-trips, legacy compatibility."""

import pytest

from repro.cluster import (
    ClusterEvent,
    EVENT_KINDS,
    EventGenerator,
    apply_events,
)
from repro.datasets import ClusterSpec, SnapshotGenerator

import numpy as np


def small_state(seed=0):
    spec = ClusterSpec(num_pms=6, target_utilization=0.6, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=seed).generate()


class TestValidation:
    def test_all_kinds_constructible(self):
        for kind in EVENT_KINDS:
            event = ClusterEvent(time_s=1.5, kind=kind)
            assert event.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ClusterEvent(time_s=0.0, kind="defrag")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ClusterEvent(time_s=-0.1, kind="arrival")

    @pytest.mark.parametrize("bad_time", [True, "12", None, [1.0]])
    def test_non_numeric_time_rejected(self, bad_time):
        with pytest.raises(ValueError):
            ClusterEvent(time_s=bad_time, kind="arrival")

    def test_zero_time_allowed(self):
        assert ClusterEvent(time_s=0, kind="exit").time_s == 0


class TestRoundTrip:
    EXAMPLES = [
        ClusterEvent(time_s=1.0, kind="arrival", vm_type_name="large"),
        ClusterEvent(time_s=2.0, kind="exit", vm_id=7),
        ClusterEvent(time_s=3.0, kind="resize", vm_id=7, vm_type_name="xlarge"),
        ClusterEvent(time_s=4.0, kind="resize"),
        ClusterEvent(time_s=5.0, kind="pm_drain", pm_id=2),
        ClusterEvent(time_s=6.0, kind="pm_fail"),
        ClusterEvent(time_s=7.0, kind="pm_add", pm_type_name="big", pm_cpu=128, pm_memory=512),
    ]

    @pytest.mark.parametrize("event", EXAMPLES, ids=lambda e: f"{e.kind}@{e.time_s}")
    def test_to_from_dict_round_trip(self, event):
        assert ClusterEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_unset_fields(self):
        payload = ClusterEvent(time_s=1.0, kind="exit", vm_id=3).to_dict()
        assert payload == {"time_s": 1.0, "kind": "exit", "vm_id": 3}

    def test_from_dict_coerces_int_fields(self):
        event = ClusterEvent.from_dict(
            {"time_s": "2.5", "kind": "pm_add", "pm_cpu": "64", "pm_memory": 256.0}
        )
        assert event.time_s == 2.5
        assert event.pm_cpu == 64 and event.pm_memory == 256

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown event fields"):
            ClusterEvent.from_dict({"time_s": 1.0, "kind": "exit", "priority": 9})

    def test_from_dict_requires_time_and_kind(self):
        with pytest.raises(ValueError, match="requires"):
            ClusterEvent.from_dict({"kind": "exit"})
        with pytest.raises(ValueError, match="requires"):
            ClusterEvent.from_dict({"time_s": 1.0})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            ClusterEvent.from_dict([1.0, "exit"])


class TestLegacyCompatibility:
    """The two-kind Fig. 1 / Fig. 5 path must keep working unchanged."""

    def test_event_generator_stream_unchanged(self):
        state = small_state()
        generator = EventGenerator(rng=np.random.default_rng(0))
        events = generator.generate(120.0, state=state)
        assert events, "expected a non-empty stream"
        assert all(e.kind in ("arrival", "exit") for e in events)

    def test_apply_events_replays_arrivals_and_exits(self):
        state = small_state()
        generator = EventGenerator(rng=np.random.default_rng(1))
        events = generator.generate(300.0, state=state)
        stats = apply_events(state, events, until_s=300.0, rng=np.random.default_rng(1))
        assert stats["arrivals"] + stats["exits"] + stats["failed_arrivals"] > 0

    def test_apply_events_ignores_simulator_kinds(self):
        state = small_state()
        num_pms = state.num_pms
        events = [
            ClusterEvent(time_s=1.0, kind="pm_drain", pm_id=0),
            ClusterEvent(time_s=2.0, kind="pm_fail"),
            ClusterEvent(time_s=3.0, kind="resize"),
            ClusterEvent(time_s=4.0, kind="pm_add"),
        ]
        stats = apply_events(state, events, until_s=10.0)
        assert stats == {"arrivals": 0, "exits": 0, "failed_arrivals": 0}
        assert state.num_pms == num_pms
