"""Synthetic trace generation determinism and JSONL record/replay."""

import json

import pytest

from repro.sim import ChurnSpec, SyntheticTrace, TRACE_FORMAT, load_trace, save_trace

DAY_S = 86400.0


class TestChurnSpec:
    def test_defaults_valid(self):
        spec = ChurnSpec()
        assert spec.family == "diurnal"

    def test_round_trip(self):
        spec = ChurnSpec(family="flash_crowd", drains_per_day=5.0)
        assert ChurnSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"family": "mystery"},
            {"peak_per_minute": 0.0},
            {"trough_per_minute": -1.0},
            {"arrival_fraction": 1.5},
            {"resizes_per_hour": -0.1},
            {"failures_per_day": -2.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChurnSpec(**kwargs)


class TestSyntheticTrace:
    @pytest.mark.parametrize("family", ["diurnal", "flash_crowd", "abnormal"])
    def test_same_seed_identical_stream(self, family):
        spec = ChurnSpec(family=family)
        first = SyntheticTrace(spec, seed=3).generate(DAY_S)
        second = SyntheticTrace(spec, seed=3).generate(DAY_S)
        assert first == second
        assert first, f"family {family} generated no events"

    def test_different_seed_differs(self):
        spec = ChurnSpec()
        assert SyntheticTrace(spec, seed=1).generate(DAY_S) != SyntheticTrace(
            spec, seed=2
        ).generate(DAY_S)

    def test_events_sorted_and_within_horizon(self):
        horizon = 2.5 * 3600.0
        events = SyntheticTrace(ChurnSpec(), seed=0).generate(horizon)
        times = [event.time_s for event in events]
        assert times == sorted(times)
        assert all(0.0 <= t < horizon for t in times)

    def test_structural_kinds_present_over_long_horizon(self):
        spec = ChurnSpec(drains_per_day=10.0, failures_per_day=10.0, adds_per_day=10.0,
                         resizes_per_hour=4.0)
        events = SyntheticTrace(spec, seed=0).generate(3 * DAY_S)
        kinds = {event.kind for event in events}
        assert {"arrival", "exit", "resize", "pm_drain", "pm_fail", "pm_add"} <= kinds

    def test_zero_horizon_empty(self):
        assert SyntheticTrace(ChurnSpec(), seed=0).generate(0.0) == []


class TestRecordReplay:
    def test_save_load_round_trip(self, tmp_path):
        events = SyntheticTrace(ChurnSpec(), seed=9).generate(6 * 3600.0)
        path = save_trace(events, tmp_path / "trace.jsonl", meta={"seed": 9})
        header, loaded = load_trace(path)
        assert loaded == events
        assert header["format"] == TRACE_FORMAT
        assert header["num_events"] == len(events)
        assert header["meta"] == {"seed": 9}

    def test_truncated_file_detected(self, tmp_path):
        events = SyntheticTrace(ChurnSpec(), seed=9).generate(6 * 3600.0)
        path = save_trace(events, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text(json.dumps({"format": "csv"}) + "\n")
        with pytest.raises(ValueError, match="not a"):
            load_trace(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": TRACE_FORMAT, "version": 99}) + "\n")
        with pytest.raises(ValueError, match="newer"):
            load_trace(path)

    def test_bad_event_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": 1, "num_events": 1}) + "\n"
            + json.dumps({"time_s": 1.0, "kind": "defrag"}) + "\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)
