"""OnlineRescheduler: determinism, StepCache parity, failure handling, drift."""

import json

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import PlanError, ReschedulingService, ServiceConfig, build_default_registry
from repro.sim import (
    ChurnSpec,
    DriftConfig,
    DriftMonitor,
    LivingCluster,
    OnlineRescheduler,
    SimulationConfig,
    SyntheticTrace,
    invalidation_rate,
    steady_state_mean,
)

DAY_S = 86400.0


def build_cluster(seed=0, num_pms=6, horizon_s=DAY_S, churn=None):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.6, best_fit_fraction=0.3)
    state = SnapshotGenerator(spec, seed=seed).generate()
    churn = churn or ChurnSpec(drains_per_day=4.0, failures_per_day=2.0, adds_per_day=6.0,
                               resizes_per_hour=2.0)
    events = SyntheticTrace(churn, seed=seed + 1).generate(horizon_s)
    return LivingCluster(state, events, seed=seed + 2)


def build_service(step_cache=True, seed=0):
    return ReschedulingService(
        build_default_registry(include_slow=False, seed=seed),
        ServiceConfig(rl_step_cache=step_cache),
    )


def run_simulation(planner="ha", step_cache=True, seed=0, max_rounds=6, on_round=None):
    cluster = build_cluster(seed=seed)
    service = build_service(step_cache=step_cache)
    config = SimulationConfig(
        planner=planner, migration_limit=4, replan_every_s=3600.0,
        plan_delay_s=120.0, horizon_s=DAY_S, seed=seed, max_rounds=max_rounds,
    )
    driver = OnlineRescheduler(cluster, service.handle, config, on_round=on_round)
    report = driver.run()
    cluster.state.arrays().assert_in_sync(cluster.state)
    return report


class TestDeterminism:
    def test_same_seed_identical_report(self):
        first = run_simulation(seed=3).deterministic_dict()
        second = run_simulation(seed=3).deterministic_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_step_cache_parity_with_rl_planner(self):
        """Cached incremental replanning must match fresh recompute exactly."""
        cached = run_simulation(planner="vmr2l", step_cache=True, seed=5)
        fresh = run_simulation(planner="vmr2l", step_cache=False, seed=5)
        assert json.dumps(cached.deterministic_dict(), sort_keys=True) == json.dumps(
            fresh.deterministic_dict(), sort_keys=True
        )

    def test_round_structure(self):
        report = run_simulation(seed=1, max_rounds=4)
        assert len(report.rounds) == 4
        assert [r.round_index for r in report.rounds] == [0, 1, 2, 3]
        assert all(r.time_s == (i + 1) * 3600.0 for i, r in enumerate(report.rounds))
        assert report.failed_rounds == 0


class TestFailureHandling:
    def test_plan_errors_are_recorded_not_raised(self):
        cluster = build_cluster(seed=7)

        def failing_plan(request):
            return PlanError(request_id=request.request_id,
                             code="service_unavailable", message="down")

        config = SimulationConfig(planner="ha", replan_every_s=3600.0,
                                  plan_delay_s=60.0, horizon_s=DAY_S, max_rounds=3)
        report = OnlineRescheduler(cluster, failing_plan, config).run()
        assert report.failed_rounds == 3
        assert all(r.error_code == "service_unavailable" for r in report.rounds)
        # Churn still advanced despite every round failing.
        assert cluster.now_s == DAY_S

    def test_flaky_backend_partial_failure(self):
        cluster = build_cluster(seed=8)
        service = build_service()
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 2:
                return PlanError(request_id=request.request_id,
                                 code="internal_error", message="boom")
            return service.handle(request)

        config = SimulationConfig(planner="ha", replan_every_s=3600.0,
                                  plan_delay_s=60.0, horizon_s=DAY_S, max_rounds=4)
        report = OnlineRescheduler(cluster, flaky, config).run()
        assert report.failed_rounds == 1
        assert report.rounds[1].ok is False
        assert [r.ok for r in report.rounds] == [True, False, True, True]

    def test_on_round_hook_fires_every_round(self):
        seen = []
        run_simulation(seed=2, max_rounds=3, on_round=lambda r: seen.append(r.round_index))
        assert seen == [0, 1, 2]


class TestOfferedLoad:
    def test_offered_load_tracks_churn_and_is_deterministic(self):
        def run(seed):
            cluster = build_cluster(seed=seed)
            service = build_service()
            config = SimulationConfig(
                planner="ha", migration_limit=4, replan_every_s=3600.0,
                plan_delay_s=120.0, horizon_s=DAY_S, seed=seed, max_rounds=4,
                load_base=1, load_per_event=0.5, load_max=8,
            )
            return OnlineRescheduler(cluster, service.handle, config).run()

        first = run(11)
        second = run(11)
        # Offered load derives from event counts only — fully reproducible
        # and part of the deterministic projection.
        assert json.dumps(first.deterministic_dict(), sort_keys=True) == json.dumps(
            second.deterministic_dict(), sort_keys=True
        )
        offered = [record.offered for record in first.rounds]
        assert all(1 <= n <= 8 for n in offered)
        assert any(n > 1 for n in offered), "churny rounds must add ghost load"
        assert first.to_dict()["offered_requests"] == sum(offered)
        for record in first.rounds:
            assert record.load_ok + record.load_shed + record.load_failed == (
                record.offered - 1
            )
            assert "load_ok" in record.to_dict()
            assert "load_ok" not in record.deterministic_dict()

    def test_ghost_outcomes_are_counted_not_steering(self):
        import threading

        cluster = build_cluster(seed=13)
        service = build_service()

        def shedding_backend(request):
            # Ghost requests are issued from the driver's sim-load-* threads;
            # the primary runs on the caller's thread.  Shed every ghost and
            # prove only the primary reply steers the simulation.
            if threading.current_thread().name.startswith("sim-load"):
                return PlanError(request_id=request.request_id,
                                 code="service_unavailable", message="shed")
            return service.handle(request)

        config = SimulationConfig(
            planner="ha", migration_limit=4, replan_every_s=3600.0,
            plan_delay_s=120.0, horizon_s=DAY_S, seed=13, max_rounds=3,
            load_base=3,
        )
        report = OnlineRescheduler(cluster, shedding_backend, config).run()
        assert report.failed_rounds == 0  # sheds hit ghosts only
        for record in report.rounds:
            assert record.offered == 3
            assert record.load_shed == 2
            assert record.load_ok == 0

    def test_control_plane_stats_sampled_into_report(self):
        cluster = build_cluster(seed=17)
        service = build_service()
        config = SimulationConfig(
            planner="ha", migration_limit=4, replan_every_s=3600.0,
            plan_delay_s=120.0, horizon_s=DAY_S, seed=17, max_rounds=2,
        )
        counters = {"scale_ups": 2, "scale_downs": 1, "shed": 4}
        report = OnlineRescheduler(
            cluster, service.handle, config,
            control_plane_stats=lambda: counters,
        ).run()
        assert report.to_dict()["control_plane"] == counters
        # Without a sampler the section stays an empty dict, not absent.
        bare = OnlineRescheduler(build_cluster(seed=17), service.handle, config).run()
        assert bare.to_dict()["control_plane"] == {}


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replan_every_s": 0.0},
            {"plan_delay_s": -1.0},
            {"plan_delay_s": 3600.0, "replan_every_s": 3600.0},
            {"horizon_s": 0.0},
            {"max_rounds": 0},
            {"steady_state_fraction": 0.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestDriftMonitor:
    def test_fires_on_sustained_degradation(self):
        monitor = DriftMonitor(DriftConfig(window=4, baseline_window=8, threshold=0.2))
        fired = []
        monitor.add_hook(lambda event: fired.append(event))
        for _ in range(12):
            monitor.observe(0.10)
        assert monitor.events == []
        event = None
        for _ in range(6):
            event = event or monitor.observe(0.20)
        assert event is not None
        assert event.degradation > 0.2
        assert fired and fired[0] is monitor.events[0]

    def test_quiet_on_stable_series(self):
        monitor = DriftMonitor(DriftConfig(window=4, baseline_window=8, threshold=0.2))
        for i in range(50):
            monitor.observe(0.10 + 0.001 * (i % 3))
        assert monitor.events == []

    def test_improvement_never_fires(self):
        monitor = DriftMonitor(DriftConfig(window=4, baseline_window=8, threshold=0.1))
        for value in [0.3] * 12 + [0.05] * 12:
            monitor.observe(value)
        assert monitor.events == []

    def test_cooldown_suppresses_refiring(self):
        config = DriftConfig(window=4, baseline_window=8, threshold=0.2, cooldown=100)
        monitor = DriftMonitor(config)
        for value in [0.1] * 12 + [0.5] * 30:
            monitor.observe(value)
        assert len(monitor.events) == 1


class TestSummaries:
    def test_steady_state_mean_uses_tail(self):
        series = [1.0] * 5 + [0.0] * 5
        assert steady_state_mean(series, 0.5) == 0.0
        assert steady_state_mean(series, 1.0) == 0.5

    def test_steady_state_mean_empty_is_nan(self):
        assert steady_state_mean([]) != steady_state_mean([])  # NaN

    def test_invalidation_rate(self):
        assert invalidation_rate(0, 0) == 0.0
        assert invalidation_rate(10, 3) == pytest.approx(0.3)
