"""LivingCluster engine: event semantics, PM lifecycle, SoA/journal exactness."""

import pytest

from repro.cluster import ClusterEvent, PhysicalMachine
from repro.cluster.vm_types import DEFAULT_PM_TYPE, PMType
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.sim import ChurnSpec, LivingCluster, SyntheticTrace

DAY_S = 86400.0


def small_state(seed=0, num_pms=6, utilization=0.6):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=utilization,
                       best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=seed).generate()


class TestPmLifecycleStateMethods:
    def test_add_pm(self):
        state = small_state()
        before = state.num_pms
        new_id = max(state.pms) + 1
        state.add_pm(PhysicalMachine(pm_id=new_id, pm_type=DEFAULT_PM_TYPE))
        assert state.num_pms == before + 1
        assert not state.pms[new_id].vm_ids
        state.arrays().assert_in_sync(state)

    def test_add_pm_duplicate_id_rejected(self):
        state = small_state()
        existing = next(iter(state.pms))
        with pytest.raises(ValueError, match="already exists"):
            state.add_pm(PhysicalMachine(pm_id=existing, pm_type=DEFAULT_PM_TYPE))

    def test_add_pm_must_join_empty(self):
        state = small_state()
        pm = PhysicalMachine(pm_id=max(state.pms) + 1, pm_type=DEFAULT_PM_TYPE)
        pm.numas[0].vm_ids.add(1)
        with pytest.raises(ValueError, match="empty"):
            state.add_pm(pm)

    def test_remove_pm_requires_empty(self):
        state = small_state()
        occupied = next(pm_id for pm_id, pm in state.pms.items() if pm.vm_ids)
        with pytest.raises(ValueError, match="still hosts"):
            state.remove_pm(occupied)

    def test_remove_pm_same_count_remove_add_rebuilds_soa(self):
        """A remove+add pair of equal count must not leave a stale SoA."""
        state = small_state()
        state.arrays()  # build the view
        new_id = max(state.pms) + 1
        state.add_pm(PhysicalMachine(pm_id=new_id, pm_type=DEFAULT_PM_TYPE))
        state.remove_pm(new_id)
        bigger = PMType("pm-big", cpu=256, memory=1024)
        state.add_pm(PhysicalMachine(pm_id=new_id + 1, pm_type=bigger))
        state.remove_pm(new_id + 1)
        state.arrays().assert_in_sync(state)

    def test_cannot_remove_last_pm(self):
        state = small_state(num_pms=2, utilization=0.3)
        for vm_id in list(state.placed_vm_ids()):
            state.remove_vm_from_cluster(vm_id)
        pm_ids = sorted(state.pms)
        state.remove_pm(pm_ids[0])
        with pytest.raises(ValueError, match="last PM"):
            state.remove_pm(pm_ids[1])


class TestPinnedEvents:
    """Events with explicit targets (the recorded-trace path)."""

    def test_arrival_with_type(self):
        state = small_state()
        cluster = LivingCluster(
            state, [ClusterEvent(time_s=1.0, kind="arrival", vm_type_name="large")]
        )
        before = state.num_vms
        cluster.advance(10.0)
        assert cluster.stats["arrivals"] == 1
        assert state.num_vms == before + 1

    def test_exit_with_vm_id(self):
        state = small_state()
        victim = state.placed_vm_ids()[0]
        cluster = LivingCluster(state, [ClusterEvent(time_s=1.0, kind="exit", vm_id=victim)])
        cluster.advance(10.0)
        assert cluster.stats["exits"] == 1
        assert victim not in state.vms

    def test_exit_for_missing_vm_skipped(self):
        state = small_state()
        cluster = LivingCluster(state, [ClusterEvent(time_s=1.0, kind="exit", vm_id=999_999)])
        cluster.advance(10.0)
        assert cluster.stats["exits"] == 0
        assert cluster.stats["skipped"] == 1

    def test_resize_with_explicit_type(self):
        state = small_state()
        # Pick a VM that is not already the target flavor.
        vm_id = next(
            vm_id for vm_id in state.placed_vm_ids()
            if state.vms[vm_id].vm_type.name != "large"
        )
        cluster = LivingCluster(
            state,
            [ClusterEvent(time_s=1.0, kind="resize", vm_id=vm_id, vm_type_name="large")],
        )
        cluster.advance(10.0)
        assert cluster.stats["resizes"] == 1
        assert state.vms[vm_id].vm_type.name == "large"
        state.arrays().assert_in_sync(state)

    def test_resize_to_same_flavor_skipped(self):
        state = small_state()
        vm_id = state.placed_vm_ids()[0]
        same = state.vms[vm_id].vm_type.name
        cluster = LivingCluster(
            state,
            [ClusterEvent(time_s=1.0, kind="resize", vm_id=vm_id, vm_type_name=same)],
        )
        cluster.advance(10.0)
        assert cluster.stats["skipped"] == 1
        assert cluster.stats["resizes"] == 0

    def test_resize_too_big_reverts(self):
        state = small_state(num_pms=2, utilization=0.9)
        vm_id = state.placed_vm_ids()[0]
        original = state.vms[vm_id]
        old_type, old_pm = original.vm_type, original.pm_id
        # Precondition for the revert path: nowhere can absorb the largest
        # flavor (44 cpu per NUMA) on this nearly-full cluster.
        freed = original.cpu
        assert all(
            min(numa.free_cpu for numa in pm.numas) + freed < 44
            for pm in state.pms.values()
        )
        cluster = LivingCluster(
            state,
            [ClusterEvent(time_s=1.0, kind="resize", vm_id=vm_id, vm_type_name="22xlarge")],
        )
        cluster.advance(10.0)
        assert cluster.stats["failed_resizes"] == 1
        assert state.vms[vm_id].vm_type == old_type
        assert state.vms[vm_id].pm_id == old_pm
        state.arrays().assert_in_sync(state)

    def test_pm_drain_moves_vms_and_removes_pm(self):
        state = small_state()
        victim = next(pm_id for pm_id, pm in state.pms.items() if pm.vm_ids)
        hosted = sorted(state.pms[victim].vm_ids)
        cluster = LivingCluster(state, [ClusterEvent(time_s=1.0, kind="pm_drain", pm_id=victim)])
        cluster.advance(10.0)
        assert victim not in state.pms
        assert cluster.stats["drains"] == 1
        moved = cluster.stats["drain_migrations"]
        evicted = cluster.stats["evictions"]
        assert moved + evicted == len(hosted)
        for vm_id in hosted:
            if vm_id in state.vms:
                assert state.vms[vm_id].pm_id != victim
        state.arrays().assert_in_sync(state)

    def test_pm_fail_loses_vms(self):
        state = small_state()
        victim = next(pm_id for pm_id, pm in state.pms.items() if pm.vm_ids)
        hosted = sorted(state.pms[victim].vm_ids)
        cluster = LivingCluster(state, [ClusterEvent(time_s=1.0, kind="pm_fail", pm_id=victim)])
        cluster.advance(10.0)
        assert victim not in state.pms
        assert cluster.stats["failures"] == 1
        assert cluster.stats["lost_vms"] == len(hosted)
        assert all(vm_id not in state.vms for vm_id in hosted)
        state.arrays().assert_in_sync(state)

    def test_drain_of_missing_pm_skipped(self):
        state = small_state()
        cluster = LivingCluster(state, [ClusterEvent(time_s=1.0, kind="pm_drain", pm_id=777)])
        cluster.advance(10.0)
        assert cluster.stats["skipped"] == 1
        assert cluster.stats["drains"] == 0

    def test_drain_of_last_pm_skipped(self):
        state = small_state(num_pms=2, utilization=0.3)
        pm_ids = sorted(state.pms)
        events = [
            ClusterEvent(time_s=1.0, kind="pm_fail", pm_id=pm_ids[0]),
            ClusterEvent(time_s=2.0, kind="pm_drain", pm_id=pm_ids[1]),
        ]
        cluster = LivingCluster(state, events)
        cluster.advance(10.0)
        assert cluster.stats["failures"] == 1
        assert cluster.stats["skipped"] == 1
        assert pm_ids[1] in state.pms

    def test_pm_add_with_explicit_capacity(self):
        state = small_state()
        cluster = LivingCluster(
            state,
            [ClusterEvent(time_s=1.0, kind="pm_add", pm_type_name="big",
                          pm_cpu=256, pm_memory=1024)],
        )
        before = sorted(state.pms)
        cluster.advance(10.0)
        new_id = next(pm_id for pm_id in state.pms if pm_id not in before)
        assert state.pms[new_id].pm_type.cpu == 256
        assert cluster.stats["adds"] == 1
        state.arrays().assert_in_sync(state)

    def test_pm_add_generation_schedule_grows_capacity(self):
        state = small_state()
        events = [ClusterEvent(time_s=float(i + 1), kind="pm_add") for i in range(8)]
        cluster = LivingCluster(state, events, adds_per_generation=4, generation_growth=1.5)
        base_cpu = cluster._base_pm_type.cpu
        before = set(state.pms)
        cluster.advance(100.0)
        added = [state.pms[pm_id] for pm_id in sorted(set(state.pms) - before)]
        assert len(added) == 8
        cpus = [pm.pm_type.cpu for pm in added]
        # Generations bump on the 4th and 8th add: capacities never shrink
        # and the last generation is strictly bigger than the first.
        assert cpus == sorted(cpus)
        assert cpus[-1] > base_cpu


class TestEngineChurn:
    def test_heavy_synthetic_churn_keeps_soa_exact(self):
        state = small_state(num_pms=8)
        spec = ChurnSpec(family="abnormal", peak_per_minute=4.0,
                         resizes_per_hour=6.0, drains_per_day=12.0,
                         failures_per_day=6.0, adds_per_day=18.0)
        events = SyntheticTrace(spec, seed=5).generate(DAY_S)
        cluster = LivingCluster(state, events, seed=6)
        cluster.advance(DAY_S)
        assert cluster.pending_events == 0
        assert sum(cluster.stats.values()) == len(events) + cluster.stats["drain_migrations"] \
            + cluster.stats["evictions"] + cluster.stats["lost_vms"]
        state.arrays().assert_in_sync(state)

    def test_same_seed_identical_trajectory(self):
        spec = ChurnSpec(drains_per_day=6.0, failures_per_day=3.0, adds_per_day=9.0)
        events = SyntheticTrace(spec, seed=2).generate(DAY_S)

        def run():
            cluster = LivingCluster(small_state(seed=1), list(events), seed=4)
            cluster.advance(DAY_S)
            return cluster.state.to_dict(), dict(cluster.stats)

        assert run() == run()

    def test_advance_backwards_rejected(self):
        cluster = LivingCluster(small_state(), [])
        cluster.advance(100.0)
        with pytest.raises(ValueError, match="backwards"):
            cluster.advance(50.0)

    def test_partial_advance_resumes(self):
        state = small_state()
        events = SyntheticTrace(ChurnSpec(), seed=3).generate(4 * 3600.0)
        cluster = LivingCluster(state, events, seed=3)
        cluster.advance(2 * 3600.0)
        remaining = cluster.pending_events
        assert 0 < remaining < len(events)
        cluster.advance(4 * 3600.0)
        assert cluster.pending_events == 0
