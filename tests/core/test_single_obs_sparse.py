"""The single-observation sparse tree path, float32 attention and no-grad mode.

PR 2 grouped the tree-local attention stage for stacked batches only; this
suite pins the retirement of the dense single-observation path:

* batch=1 grouped tree attention is numerically identical (≤1e-8, in practice
  machine precision) to the old dense masked path for ``act`` and
  ``evaluate_actions`` — outputs AND gradients;
* the dense ``S×S`` tree mask is never materialized outside reference mode;
* the float32 VM↔VM attention compute mode stays within documented tolerance
  of the float64 path and still trains (finite gradients);
* ``repro.nn.no_grad`` inference produces bitwise-identical numbers.
"""

import numpy as np
import pytest

import repro.core.features as features_module
from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, VMR2LConfig
from repro.core.features import FeatureBatch, build_feature_batch
from repro.core.policy import TwoStagePolicy
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import VMRescheduleEnv
from repro.nn import no_grad, reference_ops


@pytest.fixture(scope="module")
def env():
    spec = ClusterSpec(name="sparse1", num_pms=7, target_utilization=0.75, best_fit_fraction=0.3)
    snapshot = SnapshotGenerator(spec, seed=2).generate()
    env = VMRescheduleEnv(snapshot, constraint_config=ConstraintConfig(migration_limit=5), seed=0)
    env.reset()
    return env


@pytest.fixture()
def observation(env):
    return env._observation()


@pytest.fixture(scope="module")
def policy():
    return TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))


class _DenseTreePath:
    """Force the pre-PR-4 dense masked tree stage (grouping disabled)."""

    def __enter__(self):
        self._original = FeatureBatch.tree_grouping
        FeatureBatch.tree_grouping = lambda self: None
        return self

    def __exit__(self, *exc):
        FeatureBatch.tree_grouping = self._original
        return False


def grads_of(policy):
    return [None if p.grad is None else p.grad.copy() for p in policy.parameters()]


def clear_grads(policy):
    for p in policy.parameters():
        p.grad = None


class TestSingleObservationGroupedParity:
    def test_act_matches_dense_path(self, env, observation, policy):
        grouped = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        with _DenseTreePath():
            dense = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        assert grouped.vm_index == dense.vm_index
        assert grouped.pm_index == dense.pm_index
        assert grouped.log_prob == pytest.approx(dense.log_prob, abs=1e-8)
        assert grouped.value == pytest.approx(dense.value, abs=1e-8)
        assert grouped.entropy == pytest.approx(dense.entropy, abs=1e-8)
        np.testing.assert_allclose(grouped.vm_probs, dense.vm_probs, atol=1e-8)
        np.testing.assert_allclose(grouped.pm_probs, dense.pm_probs, atol=1e-8)

    def test_evaluate_actions_outputs_and_gradients_match_dense(self, env, observation, policy):
        action = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        pm_mask = env.pm_action_mask(action.vm_index)

        def run():
            log_prob, entropy, value = policy.evaluate_actions(
                observation, action.vm_index, action.pm_index, observation.vm_mask, pm_mask
            )
            clear_grads(policy)
            (log_prob.sum() + entropy.sum() + value.sum()).backward()
            return (
                float(log_prob.item()),
                float(entropy.item()),
                float(value.item()),
                grads_of(policy),
            )

        lp_g, ent_g, val_g, grads_g = run()
        with _DenseTreePath():
            lp_d, ent_d, val_d, grads_d = run()
        assert lp_g == pytest.approx(lp_d, abs=1e-8)
        assert ent_g == pytest.approx(ent_d, abs=1e-8)
        assert val_g == pytest.approx(val_d, abs=1e-8)
        for grad_g, grad_d in zip(grads_g, grads_d):
            if grad_g is None:
                assert grad_d is None
            else:
                np.testing.assert_allclose(grad_g, grad_d, atol=1e-8)

    def test_dense_tree_mask_never_materialized(self, env, observation, policy, monkeypatch):
        """The acceptance assertion: no S×S tree mask outside reference mode."""

        def boom(membership):
            raise AssertionError("dense S×S tree mask materialized on the hot path")

        monkeypatch.setattr(features_module, "build_tree_mask", boom)
        output = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        policy.evaluate_actions(
            observation,
            output.vm_index,
            output.pm_index,
            observation.vm_mask,
            env.pm_action_mask(output.vm_index),
        )

    def test_reference_mode_still_uses_dense_mask(self, env, observation, policy):
        """The seed-substrate benchmark path keeps the dense stage reachable."""
        with reference_ops():
            batch = build_feature_batch(observation)
            policy.extractor(batch)
            assert batch._dense_tree_mask is not None
            seq = observation.num_pms + observation.num_vms
            assert batch._dense_tree_mask.shape == (seq, seq)

    def test_grouping_built_once_per_batch(self, observation):
        batch = build_feature_batch(observation)
        first = batch.tree_grouping()
        assert first is not None
        assert batch.tree_grouping() is first


class TestFloat32VMAttention:
    def test_parity_within_tolerance(self, env, observation):
        base = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        f32 = TwoStagePolicy(
            ModelConfig(float32_vm_attention=True), rng=np.random.default_rng(0)
        )
        out64 = base.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        out32 = f32.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        # Documented tolerance: reduced precision only touches the VM↔VM
        # score/softmax/context stage; downstream error stays ~1e-6.
        assert out32.value == pytest.approx(out64.value, abs=1e-5)
        assert out32.log_prob == pytest.approx(out64.log_prob, abs=1e-5)
        np.testing.assert_allclose(out32.vm_probs, out64.vm_probs, atol=1e-5)

    def test_gradients_flow_through_float32_stage(self, env, observation):
        policy = TwoStagePolicy(
            ModelConfig(float32_vm_attention=True), rng=np.random.default_rng(0)
        )
        output = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        log_prob, entropy, value = policy.evaluate_actions(
            observation,
            output.vm_index,
            output.pm_index,
            observation.vm_mask,
            env.pm_action_mask(output.vm_index),
        )
        (log_prob.sum() + value.sum()).backward()
        grads = [p.grad for p in policy.parameters() if p.grad is not None]
        assert grads
        for grad in grads:
            assert np.isfinite(grad).all()
            assert np.asarray(grad).dtype == np.float64  # params stay f64

    def test_config_round_trips(self):
        config = VMR2LConfig(model=ModelConfig(float32_vm_attention=True))
        restored = VMR2LConfig.from_dict(config.to_dict())
        assert restored.model.float32_vm_attention is True


class TestNoGradInference:
    def test_act_bitwise_identical_under_no_grad(self, env, observation, policy):
        tracked = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5))
        with no_grad():
            untracked = policy.act(
                observation, pm_mask_fn=env.pm_action_mask, rng=np.random.default_rng(5)
            )
        assert tracked.vm_index == untracked.vm_index
        assert tracked.pm_index == untracked.pm_index
        assert tracked.log_prob == untracked.log_prob
        assert tracked.value == untracked.value
        np.testing.assert_array_equal(tracked.vm_probs, untracked.vm_probs)
        np.testing.assert_array_equal(tracked.pm_probs, untracked.pm_probs)

    def test_no_grad_is_thread_local(self):
        """Concurrent serving threads must not strand autograd off globally."""
        import threading

        from repro.nn import grad_enabled

        seen = {}
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5)
            seen["worker_after"] = grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5)
        seen["main_during"] = grad_enabled()  # other thread's no_grad is invisible
        release.set()
        thread.join(timeout=5)
        assert seen["main_during"] is True
        assert seen["worker_after"] is True
        assert grad_enabled() is True

    def test_no_grad_skips_graph_construction(self, observation, policy):
        batch = build_feature_batch(observation)
        with no_grad():
            output = policy.extractor(batch)
        assert not output.vm_embeddings.requires_grad
        assert output.vm_embeddings._parents == ()
        # Tracking resumes once the context exits.
        output = policy.extractor(build_feature_batch(observation))
        assert output.vm_embeddings.requires_grad
