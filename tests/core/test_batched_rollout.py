"""Tests for batched act (one extractor forward per vectorized-env step)."""

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, PPOConfig
from repro.core.features import build_feature_batch, build_stacked_feature_batch
from repro.core.policy import TwoStagePolicy
from repro.core.ppo import PPOTrainer
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import SyncVectorEnv, VMRescheduleEnv


@pytest.fixture(scope="module")
def snapshot():
    spec = ClusterSpec(name="batched", num_pms=6, target_utilization=0.7, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=5).generate()


def make_env(snapshot):
    return VMRescheduleEnv(
        snapshot.copy(), constraint_config=ConstraintConfig(migration_limit=5), seed=0
    )


class TestStackedFeatureBatch:
    def test_stacks_same_size_observations(self, snapshot):
        envs = [make_env(snapshot) for _ in range(2)]
        observations = [env.reset() for env in envs]
        batch = build_stacked_feature_batch(observations)
        p = observations[0].num_pms
        v = observations[0].num_vms
        assert batch.batch_size == 2
        assert batch.num_pms == p and batch.num_vms == v
        assert batch.pm_features.shape == (2, p, observations[0].pm_features.shape[1])
        assert batch.vm_features.shape == (2, v, observations[0].vm_features.shape[1])
        assert batch.tree_mask.shape == (2, p + v, p + v)
        assert batch.vm_mask.shape == (2, v)
        # Each batch slice equals the single-observation batch.
        single = build_feature_batch(observations[0])
        np.testing.assert_array_equal(batch.tree_mask[0], single.tree_mask)
        np.testing.assert_array_equal(batch.membership[0], single.membership)
        np.testing.assert_array_equal(batch.pm_features.numpy()[0], single.pm_features.numpy())

    def test_empty_observation_list_rejected(self):
        with pytest.raises(ValueError):
            build_stacked_feature_batch([])


class TestActBatch:
    def test_matches_sequential_act(self, snapshot):
        envs = [make_env(snapshot) for _ in range(3)]
        observations = [env.reset() for env in envs]
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        batched = policy.act_batch(
            observations,
            pm_mask_fns=[env.pm_action_mask for env in envs],
            rng=np.random.default_rng(1),
            greedy=True,
        )
        for index, env in enumerate(envs):
            single = policy.act(
                observations[index],
                pm_mask_fn=env.pm_action_mask,
                rng=np.random.default_rng(1),
                greedy=True,
            )
            assert batched[index].vm_index == single.vm_index
            assert batched[index].pm_index == single.pm_index
            np.testing.assert_allclose(batched[index].vm_probs, single.vm_probs, atol=1e-8)
            np.testing.assert_allclose(batched[index].pm_probs, single.pm_probs, atol=1e-8)
            assert batched[index].value == pytest.approx(single.value, abs=1e-8)
            assert batched[index].entropy == pytest.approx(single.entropy, abs=1e-7)
            assert batched[index].log_prob == pytest.approx(single.log_prob, abs=1e-7)

    def test_single_observation_falls_back(self, snapshot):
        env = make_env(snapshot)
        observation = env.reset()
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        outputs = policy.act_batch(
            [observation], pm_mask_fns=[env.pm_action_mask], rng=np.random.default_rng(0)
        )
        assert len(outputs) == 1
        assert 0 <= outputs[0].vm_index < observation.num_vms

    def test_mismatched_mask_fns_rejected(self, snapshot):
        env = make_env(snapshot)
        observation = env.reset()
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            policy.act_batch([observation, observation], [env.pm_action_mask], np.random.default_rng(0))


class TestVectorizedPPO:
    def test_trainer_with_sync_vector_env(self, snapshot):
        venv = SyncVectorEnv([lambda: make_env(snapshot) for _ in range(2)])
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        trainer = PPOTrainer(
            policy,
            venv,
            PPOConfig(rollout_steps=16, minibatch_size=8, update_epochs=1, seed=0),
        )
        assert trainer.is_vectorized
        buffer = trainer.collect_rollout()
        assert len(buffer) == 16
        # Interleaved time-major layout: both envs contribute at every step.
        assert all(t.observation is not None for t in buffer.transitions)
        stats = trainer.update(buffer)
        assert np.isfinite(stats["policy_loss"])

    def test_gae_num_envs_chains(self):
        from repro.core.rollout import RolloutBuffer, Transition

        def transition(reward, done, value):
            return Transition(
                observation=None, vm_index=0, pm_index=0, log_prob=0.0,
                value=value, reward=reward, done=done, vm_mask=None, pm_mask=None,
            )

        # Two envs interleaved [t0e0, t0e1, t1e0, t1e1] must equal two
        # independent single-env buffers.
        interleaved = RolloutBuffer(4)
        env0 = [transition(1.0, False, 0.5), transition(0.0, True, 0.25)]
        env1 = [transition(-1.0, False, 0.1), transition(2.0, False, 0.3)]
        for step in range(2):
            interleaved.add(env0[step])
            interleaved.add(env1[step])
        interleaved.compute_advantages(
            0.0, gamma=0.9, gae_lambda=0.8, normalize=False,
            num_envs=2, last_values=[0.0, 0.7],
        )

        solo0 = RolloutBuffer(2)
        for t in env0:
            solo0.add(transition(t.reward, t.done, t.value))
        solo0.compute_advantages(0.0, gamma=0.9, gae_lambda=0.8, normalize=False)
        solo1 = RolloutBuffer(2)
        for t in env1:
            solo1.add(transition(t.reward, t.done, t.value))
        solo1.compute_advantages(0.7, gamma=0.9, gae_lambda=0.8, normalize=False)

        assert env0[0].advantage == pytest.approx(solo0.transitions[0].advantage)
        assert env0[1].advantage == pytest.approx(solo0.transitions[1].advantage)
        assert env1[0].advantage == pytest.approx(solo1.transitions[0].advantage)
        assert env1[1].advantage == pytest.approx(solo1.transitions[1].advantage)

    def test_gae_rejects_ragged_chains(self):
        from repro.core.rollout import RolloutBuffer, Transition

        buffer = RolloutBuffer(3)
        for _ in range(3):
            buffer.add(
                Transition(
                    observation=None, vm_index=0, pm_index=0, log_prob=0.0,
                    value=0.0, reward=0.0, done=False, vm_mask=None, pm_mask=None,
                )
            )
        with pytest.raises(ValueError):
            buffer.compute_advantages(0.0, 0.99, 0.95, num_envs=2)
