"""Tests for the VMR2L core: features, extractors, actors, policy and configs."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterState,
    ConstraintConfig,
    PhysicalMachine,
    Placement,
    PMType,
    VirtualMachine,
    VMTypeCatalog,
)
from repro.core import (
    ModelConfig,
    PPOConfig,
    RiskSeekingConfig,
    SparseAttentionExtractor,
    TwoStagePolicy,
    VanillaAttentionExtractor,
    VMR2LConfig,
    build_extractor,
    build_feature_batch,
    build_tree_mask,
    summarize_tree_sparsity,
)
from repro.core.actors import PMActor, ValueHead, VMActor
from repro.core.attention import MLPExtractor
from repro.core.policy import _apply_threshold
from repro.core.rollout import RolloutBuffer, Transition
from repro.env import ObservationBuilder, VMRescheduleEnv

CATALOG = VMTypeCatalog.main()


def small_cluster():
    pms = [PhysicalMachine(pm_id=i, pm_type=PMType("pm64", cpu=64, memory=256)) for i in range(3)]
    state = ClusterState(pms=pms, vms=[])
    placements = [
        (0, "4xlarge", 0, 0),
        (1, "xlarge", 0, 0),
        (2, "2xlarge", 1, 0),
        (3, "xlarge", 1, 1),
        (4, "16xlarge", 2, -1),
    ]
    for vm_id, name, pm, numa in placements:
        state.add_vm(VirtualMachine(vm_id=vm_id, vm_type=CATALOG.get(name)), Placement(pm, numa))
    return state


def observation_of(state, mnl=10):
    return ObservationBuilder().build(state, migrations_left=mnl)


@pytest.fixture
def model_config():
    return ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32)


class TestConfigs:
    def test_invalid_model_config(self):
        with pytest.raises(ValueError):
            ModelConfig(embed_dim=10, num_heads=3)
        with pytest.raises(ValueError):
            ModelConfig(extractor="gnn")
        with pytest.raises(ValueError):
            ModelConfig(action_mode="three_stage")

    def test_invalid_ppo_config(self):
        with pytest.raises(ValueError):
            PPOConfig(gamma=0.0)
        with pytest.raises(ValueError):
            PPOConfig(rollout_steps=0)

    def test_invalid_risk_config(self):
        with pytest.raises(ValueError):
            RiskSeekingConfig(num_trajectories=0)
        with pytest.raises(ValueError):
            RiskSeekingConfig(vm_quantile=1.5)

    def test_vmr2l_config_roundtrip(self):
        config = VMR2LConfig(model=ModelConfig(embed_dim=16, num_heads=2), migration_limit=20)
        restored = VMR2LConfig.from_dict(config.to_dict())
        assert restored.model.embed_dim == 16
        assert restored.migration_limit == 20


class TestTreeMask:
    def test_tree_mask_structure(self):
        state = small_cluster()
        obs = observation_of(state)
        batch = build_feature_batch(obs)
        mask = batch.tree_mask
        num_pms, num_vms = obs.num_pms, obs.num_vms
        assert mask.shape == (num_pms + num_vms, num_pms + num_vms)
        # Diagonal always allowed.
        assert mask.diagonal().all()
        # VM0 and VM1 share PM0 -> they attend to each other.
        assert mask[num_pms + 0, num_pms + 1]
        # VM0 (PM0) and VM2 (PM1) are in different trees.
        assert not mask[num_pms + 0, num_pms + 2]
        # VM0 attends to its own PM (index 0) but not PM1.
        assert mask[num_pms + 0, 0]
        assert not mask[num_pms + 0, 1]
        # Symmetry.
        np.testing.assert_array_equal(mask, mask.T)

    def test_tree_mask_unplaced_vm_isolated(self):
        state = small_cluster()
        state.vms[10] = VirtualMachine(vm_id=10, vm_type=CATALOG.get("large"))
        obs = observation_of(state)
        batch = build_feature_batch(obs)
        row = batch.tree_mask[obs.num_pms + sorted(state.vms).index(10)]
        assert row.sum() == 1  # only itself

    def test_sparsity_summary(self):
        mask = build_tree_mask(np.eye(3, dtype=bool))
        summary = summarize_tree_sparsity(mask)
        assert 0.0 <= summary["sparsity"] <= 1.0
        assert summary["allowed_links"] == mask.sum()


class TestExtractors:
    def test_sparse_extractor_shapes(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        output = extractor(batch)
        assert output.vm_embeddings.shape == (5, 16)
        assert output.pm_embeddings.shape == (3, 16)
        assert output.vm_pm_scores.shape == (5, 3)
        np.testing.assert_allclose(output.vm_pm_scores.sum(axis=1), np.ones(5), atol=1e-6)

    def test_vanilla_extractor_ignores_tree_mask(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = VanillaAttentionExtractor(model_config, rng=np.random.default_rng(0))
        output_a = extractor(batch)
        batch.tree_mask[:] = np.eye(batch.sequence_length, dtype=bool)
        output_b = extractor(batch)
        np.testing.assert_allclose(output_a.vm_embeddings.numpy(), output_b.vm_embeddings.numpy())

    def test_sparse_extractor_uses_tree_structure(self, model_config):
        """Changing which PM hosts a VM changes the sparse extractor's output."""
        import dataclasses

        state = small_cluster()
        obs = observation_of(state)
        batch_a = build_feature_batch(obs)
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        out_a = extractor(batch_a).vm_embeddings.numpy()
        # Re-host the first placed VM on a different PM: identical features,
        # different tree structure — the tree-local stage must notice.
        moved = obs.vm_source_pm.copy()
        placed = int(np.flatnonzero(moved >= 0)[0])
        moved[placed] = (moved[placed] + 1) % obs.num_pms
        batch_b = build_feature_batch(dataclasses.replace(obs, vm_source_pm=moved))
        out_b = extractor(batch_b).vm_embeddings.numpy()
        assert not np.allclose(out_a, out_b)

    def test_mlp_extractor_capacity_checks(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = MLPExtractor(model_config, max_pms=3, max_vms=5, rng=np.random.default_rng(0))
        output = extractor(batch)
        assert output.vm_embeddings.shape == (5, 16)
        small = MLPExtractor(model_config, max_pms=2, max_vms=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            small(batch)

    def test_parameter_count_independent_of_cluster_size(self, model_config):
        """The paper's key scaling property (§3.3 / §4)."""
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        params_before = extractor.num_parameters()
        # Feeding a bigger cluster must not change the parameter count.
        big = ClusterState(
            pms=[PhysicalMachine(pm_id=i, pm_type=PMType("pm64", cpu=64, memory=256)) for i in range(6)],
            vms=[],
        )
        for vm_id in range(12):
            big.add_vm(
                VirtualMachine(vm_id=vm_id, vm_type=CATALOG.get("xlarge")),
                Placement(vm_id % 6, vm_id % 2),
            )
        extractor(build_feature_batch(observation_of(big)))
        assert extractor.num_parameters() == params_before

    def test_build_extractor_factory(self, model_config):
        assert isinstance(build_extractor(model_config), SparseAttentionExtractor)
        vanilla_config = ModelConfig(embed_dim=16, num_heads=2, extractor="vanilla")
        assert isinstance(build_extractor(vanilla_config), VanillaAttentionExtractor)
        mlp_config = ModelConfig(embed_dim=16, num_heads=2, extractor="mlp")
        with pytest.raises(ValueError):
            build_extractor(mlp_config)
        assert isinstance(build_extractor(mlp_config, max_pms=3, max_vms=5), MLPExtractor)


class TestActors:
    def test_vm_actor_logits_shape(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        output = extractor(batch)
        logits = VMActor(model_config, rng=np.random.default_rng(0))(output)
        assert logits.shape == (5,)

    def test_pm_actor_logits_shape_and_bounds(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        output = extractor(batch)
        actor = PMActor(model_config, rng=np.random.default_rng(0))
        logits = actor(output, vm_index=2)
        assert logits.shape == (3,)
        with pytest.raises(IndexError):
            actor(output, vm_index=99)

    def test_value_head_scalar(self, model_config):
        state = small_cluster()
        batch = build_feature_batch(observation_of(state))
        extractor = SparseAttentionExtractor(model_config, rng=np.random.default_rng(0))
        value = ValueHead(model_config, rng=np.random.default_rng(0))(extractor(batch))
        assert value.shape == (1,)
        assert np.isfinite(value.item())


class TestPolicy:
    def _env(self, action_mode="two_stage"):
        state = small_cluster()
        return VMRescheduleEnv(state, ConstraintConfig(migration_limit=5))

    def test_two_stage_act_never_illegal(self, model_config):
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(10):
            output = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=rng)
            assert observation.vm_mask[output.vm_index]
            assert env.pm_action_mask(output.vm_index)[output.pm_index]

    def test_act_greedy_is_deterministic(self, model_config):
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
        a = policy.act(observation, env.pm_action_mask, np.random.default_rng(0), greedy=True)
        b = policy.act(observation, env.pm_action_mask, np.random.default_rng(99), greedy=True)
        assert a.action == b.action

    def test_evaluate_actions_matches_act_log_prob(self, model_config):
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
        output = policy.act(observation, env.pm_action_mask, np.random.default_rng(0))
        pm_mask = env.pm_action_mask(output.vm_index)
        log_prob, entropy, value = policy.evaluate_actions(
            observation, output.vm_index, output.pm_index, observation.vm_mask, pm_mask
        )
        assert log_prob.numpy()[0] == pytest.approx(output.log_prob, abs=1e-5)
        assert entropy.numpy()[0] == pytest.approx(output.entropy, abs=1e-5)
        assert value.numpy()[0] == pytest.approx(output.value, abs=1e-5)

    def test_full_joint_mode_requires_mask_and_respects_it(self, model_config):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, action_mode="full_joint")
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            policy.act(observation, env.pm_action_mask, np.random.default_rng(0))
        joint = env.joint_action_mask()
        output = policy.act(observation, env.pm_action_mask, np.random.default_rng(0), joint_mask=joint)
        assert joint[output.vm_index, output.pm_index]

    def test_penalty_mode_skips_masks(self, model_config):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, action_mode="penalty")
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        output = policy.act(observation, env.pm_action_mask, np.random.default_rng(0))
        assert 0 <= output.vm_index < observation.num_vms
        assert 0 <= output.pm_index < observation.num_pms

    def test_value_of_matches_act_value(self, model_config):
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
        output = policy.act(observation, env.pm_action_mask, np.random.default_rng(0))
        assert policy.value_of(observation) == pytest.approx(output.value, abs=1e-6)

    def test_apply_threshold(self):
        probs = np.array([0.001, 0.01, 0.39, 0.599])
        thresholded = _apply_threshold(probs.copy(), 0.5)
        assert thresholded[0] == 0.0
        assert thresholded.sum() == pytest.approx(1.0)
        untouched = _apply_threshold(probs.copy(), None)
        np.testing.assert_allclose(untouched, probs)

    def test_gradients_flow_through_policy_loss(self, model_config):
        env = self._env()
        observation = env.reset()
        policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
        output = policy.act(observation, env.pm_action_mask, np.random.default_rng(0))
        pm_mask = env.pm_action_mask(output.vm_index)
        log_prob, entropy, value = policy.evaluate_actions(
            observation, output.vm_index, output.pm_index, observation.vm_mask, pm_mask
        )
        loss = -log_prob.sum() + (value * value).sum() - 0.01 * entropy.sum()
        loss.backward()
        grads = [p.grad for p in policy.parameters() if p.grad is not None]
        assert grads, "expected at least some parameters to receive gradients"
        assert any(np.abs(g).sum() > 0 for g in grads)


class TestRolloutBuffer:
    def _transition(self, reward, done, value=0.0):
        state = small_cluster()
        obs = observation_of(state)
        return Transition(
            observation=obs,
            vm_index=0,
            pm_index=1,
            log_prob=-1.0,
            value=value,
            reward=reward,
            done=done,
            vm_mask=obs.vm_mask,
            pm_mask=np.ones(obs.num_pms, dtype=bool),
        )

    def test_capacity_enforced(self):
        buffer = RolloutBuffer(capacity=1)
        buffer.add(self._transition(1.0, False))
        assert buffer.full
        with pytest.raises(RuntimeError):
            buffer.add(self._transition(1.0, False))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RolloutBuffer(capacity=0)

    def test_gae_matches_manual_computation(self):
        buffer = RolloutBuffer(capacity=3)
        rewards = [1.0, 0.0, 2.0]
        values = [0.5, 0.4, 0.3]
        for r, v in zip(rewards, values):
            buffer.add(self._transition(r, False, value=v))
        gamma, lam = 0.9, 0.8
        buffer.compute_advantages(last_value=0.2, gamma=gamma, gae_lambda=lam, normalize=False)
        # Manual GAE.
        deltas = [
            rewards[0] + gamma * values[1] - values[0],
            rewards[1] + gamma * values[2] - values[1],
            rewards[2] + gamma * 0.2 - values[2],
        ]
        adv2 = deltas[2]
        adv1 = deltas[1] + gamma * lam * adv2
        adv0 = deltas[0] + gamma * lam * adv1
        stored = [t.advantage for t in buffer.transitions]
        np.testing.assert_allclose(stored, [adv0, adv1, adv2], atol=1e-10)
        np.testing.assert_allclose(
            [t.return_ for t in buffer.transitions],
            [adv0 + values[0], adv1 + values[1], adv2 + values[2]],
            atol=1e-10,
        )

    def test_gae_resets_at_episode_boundary(self):
        buffer = RolloutBuffer(capacity=2)
        buffer.add(self._transition(1.0, True, value=0.5))
        buffer.add(self._transition(1.0, False, value=0.5))
        buffer.compute_advantages(last_value=10.0, gamma=0.99, gae_lambda=0.95, normalize=False)
        # The terminal transition must not bootstrap from the next value.
        assert buffer.transitions[0].advantage == pytest.approx(1.0 - 0.5)

    def test_normalized_advantages_have_zero_mean(self):
        buffer = RolloutBuffer(capacity=4)
        for r in (1.0, -1.0, 2.0, 0.5):
            buffer.add(self._transition(r, False, value=0.0))
        buffer.compute_advantages(last_value=0.0, gamma=0.99, gae_lambda=0.95, normalize=True)
        advantages = np.array([t.advantage for t in buffer.transitions])
        assert abs(advantages.mean()) < 1e-8

    def test_minibatch_indices_cover_buffer(self):
        buffer = RolloutBuffer(capacity=5)
        for _ in range(5):
            buffer.add(self._transition(0.0, False))
        seen = []
        for batch in buffer.minibatch_indices(2, np.random.default_rng(0)):
            seen.extend(batch.tolist())
        assert sorted(seen) == [0, 1, 2, 3, 4]
