"""Sync vs Async rollout parity and the inference-mode collection path.

The acceptance bar for the multi-process collector: a trainer driving the
async backend under the same seed must produce BITWISE-identical rollouts to
the synchronous backend, and the no-grad inference collection path must be
bitwise-identical to the grad-tracking reference path.
"""

from functools import partial

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, PPOConfig
from repro.core.policy import TwoStagePolicy
from repro.core.ppo import PPOTrainer
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import AsyncVectorEnv, SyncVectorEnv, VMRescheduleEnv


@pytest.fixture(scope="module")
def snapshot():
    spec = ClusterSpec(name="async-ppo", num_pms=6, target_utilization=0.72, best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=11).generate()


def factories(snapshot, count):
    config = ConstraintConfig(migration_limit=4)
    return [partial(VMRescheduleEnv, snapshot.copy(), config) for _ in range(count)]


def make_trainer(snapshot, env, seed=0, **ppo_kwargs):
    policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(seed))
    config = PPOConfig(
        rollout_steps=16, minibatch_size=8, update_epochs=1, seed=seed, **ppo_kwargs
    )
    return PPOTrainer(policy, env, config)


def assert_buffers_bitwise_equal(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs.transitions, rhs.transitions):
        assert (a.vm_index, a.pm_index) == (b.vm_index, b.pm_index)
        assert a.log_prob == b.log_prob
        assert a.value == b.value
        assert a.reward == b.reward
        assert a.done == b.done
        assert a.advantage == b.advantage
        assert a.return_ == b.return_
        np.testing.assert_array_equal(a.observation.pm_features, b.observation.pm_features)
        np.testing.assert_array_equal(a.observation.vm_features, b.observation.vm_features)
        np.testing.assert_array_equal(a.vm_mask, b.vm_mask)
        np.testing.assert_array_equal(a.pm_mask, b.pm_mask)


class TestSyncAsyncParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_rollouts_bitwise_identical(self, snapshot, num_workers):
        sync_trainer = make_trainer(snapshot, SyncVectorEnv(factories(snapshot, 4)))
        venv = AsyncVectorEnv(factories(snapshot, 4), num_workers=num_workers, seed=0)
        try:
            async_trainer = make_trainer(snapshot, venv)
            assert_buffers_bitwise_equal(
                sync_trainer.collect_rollout(), async_trainer.collect_rollout()
            )
            # A second rollout continues from live episode state on both sides.
            assert_buffers_bitwise_equal(
                sync_trainer.collect_rollout(), async_trainer.collect_rollout()
            )
        finally:
            venv.close()

    def test_rollouts_bitwise_identical_under_spawn(self, snapshot):
        sync_trainer = make_trainer(snapshot, SyncVectorEnv(factories(snapshot, 2)))
        venv = AsyncVectorEnv(
            factories(snapshot, 2), num_workers=2, start_method="spawn", seed=0
        )
        try:
            async_trainer = make_trainer(snapshot, venv)
            assert_buffers_bitwise_equal(
                sync_trainer.collect_rollout(), async_trainer.collect_rollout()
            )
        finally:
            venv.close()

    def test_update_runs_on_async_rollouts(self, snapshot):
        venv = AsyncVectorEnv(factories(snapshot, 2), num_workers=2, seed=0)
        try:
            trainer = make_trainer(snapshot, venv)
            buffer = trainer.collect_rollout()
            stats = trainer.update(buffer)
            assert np.isfinite(stats["policy_loss"])
        finally:
            venv.close()


class TestInferenceRollouts:
    def test_inference_matches_reference_collection(self, snapshot):
        reference = make_trainer(
            snapshot, SyncVectorEnv(factories(snapshot, 2)), inference_rollouts=False
        )
        inference = make_trainer(
            snapshot, SyncVectorEnv(factories(snapshot, 2)), inference_rollouts=True
        )
        assert_buffers_bitwise_equal(
            reference.collect_rollout(), inference.collect_rollout()
        )

    def test_inference_matches_reference_single_env(self, snapshot):
        def env():
            return VMRescheduleEnv(snapshot.copy(), ConstraintConfig(migration_limit=4))

        reference = make_trainer(snapshot, env(), inference_rollouts=False)
        inference = make_trainer(snapshot, env(), inference_rollouts=True)
        assert_buffers_bitwise_equal(
            reference.collect_rollout(), inference.collect_rollout()
        )

    def test_inference_rollout_builds_no_graph(self, snapshot):
        trainer = make_trainer(snapshot, SyncVectorEnv(factories(snapshot, 2)))
        buffer = trainer.collect_rollout()
        # Stored transitions must be plain floats — nothing retaining a graph.
        for transition in buffer.transitions:
            assert isinstance(transition.log_prob, float)
            assert isinstance(transition.value, float)
        # ...and the update (which DOES need gradients) still works.
        stats = trainer.update(buffer)
        assert np.isfinite(stats["policy_loss"])
