"""Tests for VMR2LAgent.plan_batch (micro-batched greedy planning)."""

import pytest

from repro.cluster import ConstraintConfig
from repro.core import VMR2LAgent
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env.objectives import MixedFragmentObjective


def snapshots(count, num_pms=6, seed=0):
    spec = ClusterSpec(name="pb", num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.3)
    generator = SnapshotGenerator(spec, seed=seed)
    return [generator.generate() for _ in range(count)]


@pytest.fixture(scope="module")
def agent():
    return VMR2LAgent(constraint_config=ConstraintConfig(migration_limit=5), seed=0)


class TestPlanBatch:
    def test_greedy_batch_matches_single_trajectory(self, agent):
        states = snapshots(3)
        results = agent.plan_batch(states, migration_limits=4, greedy=True)
        for state, result in zip(states, results):
            solo = agent.plan_single_trajectory(state, 4, greedy=True)
            assert [m.as_tuple() for m in result.plan] == [m.as_tuple() for m in solo]
            assert result.algorithm == "VMR2L"
            assert result.info["batch_size"] == 3

    def test_inference_seconds_is_per_request_share(self, agent):
        # The batch's wall time is split across requests by step share, so
        # per-request timings stay comparable to sequential planners.
        states = snapshots(3)
        results = agent.plan_batch(states, migration_limits=4, greedy=True)
        batch_seconds = results[0].info["batch_seconds"]
        assert all(r.inference_seconds <= batch_seconds + 1e-9 for r in results)
        assert sum(r.inference_seconds for r in results) == pytest.approx(batch_seconds)

    def test_per_state_migration_limits(self, agent):
        states = snapshots(2)
        results = agent.plan_batch(states, migration_limits=[1, 3], greedy=True)
        assert len(results[0].plan) <= 1
        assert len(results[1].plan) <= 3

    def test_zero_limit_entries_are_noops(self, agent):
        states = snapshots(2)
        results = agent.plan_batch(states, migration_limits=[0, 2], greedy=True)
        assert len(results[0].plan) == 0
        assert results[0].info.get("noop") is True
        assert results[0].inference_seconds == 0.0

    def test_empty_batch(self, agent):
        assert agent.plan_batch([], migration_limits=[]) == []

    def test_mismatched_limits_rejected(self, agent):
        with pytest.raises(ValueError):
            agent.plan_batch(snapshots(2), migration_limits=[1])

    def test_negative_limit_rejected(self, agent):
        with pytest.raises(ValueError):
            agent.plan_batch(snapshots(1), migration_limits=[-1])

    def test_input_states_not_mutated(self, agent):
        states = snapshots(2)
        before = [state.to_dict() for state in states]
        agent.plan_batch(states, migration_limits=3, greedy=True)
        assert [state.to_dict() for state in states] == before

    def test_objective_override(self, agent):
        states = snapshots(2)
        results = agent.plan_batch(
            states, migration_limits=2, greedy=True,
            objective=MixedFragmentObjective(weight=0.5),
        )
        assert all(0.0 <= result.info["final_objective"] <= 1.0 for result in results)

    def test_ragged_cluster_sizes_fall_back_but_plan(self, agent):
        small = snapshots(1, num_pms=5, seed=1)[0]
        large = snapshots(1, num_pms=7, seed=2)[0]
        results = agent.plan_batch([small, large], migration_limits=2, greedy=True)
        assert len(results) == 2
        for state, result in zip([small, large], results):
            solo = agent.plan_single_trajectory(state, 2, greedy=True)
            assert [m.as_tuple() for m in result.plan] == [m.as_tuple() for m in solo]
