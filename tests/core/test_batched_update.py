"""Parity tests for the batched PPO update path.

The vectorized minibatch update (``TwoStagePolicy.evaluate_actions_batch`` +
``PPOTrainer._minibatch_step_batched``) must reproduce the per-transition
reference bit-for-bit (within float tolerance): log-probs, entropies, values,
gradients after one backward, and parameters after a full optimizer step.
"""

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, PPOConfig
from repro.core.features import build_feature_batch, stack_feature_batches
from repro.core.policy import TwoStagePolicy, _apply_threshold
from repro.core.ppo import PPOTrainer
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import VMRescheduleEnv


@pytest.fixture(scope="module")
def snapshot():
    spec = ClusterSpec(name="batched-update", num_pms=6, target_utilization=0.7,
                       best_fit_fraction=0.3)
    return SnapshotGenerator(spec, seed=7).generate()


def make_env(snapshot, migration_limit=5, penalty=None):
    return VMRescheduleEnv(
        snapshot.copy(),
        constraint_config=ConstraintConfig(migration_limit=migration_limit),
        seed=0,
        illegal_action_penalty=penalty,
    )


def collect_steps(env, policy, steps, rng):
    """Roll a few steps and return the stored-transition ingredients."""
    observation = env.reset()
    two_stage = policy.config.action_mode == "two_stage"
    records = []
    for _ in range(steps):
        output = policy.act(observation, pm_mask_fn=env.pm_action_mask, rng=rng)
        vm_mask = observation.vm_mask.copy() if two_stage else None
        pm_mask = env.pm_action_mask(output.vm_index).copy() if two_stage else None
        records.append((observation, output.vm_index, output.pm_index, vm_mask, pm_mask))
        observation, _, done, _ = env.step(output.action)
        if done:
            observation = env.reset()
    return records


def batch_args(records):
    observations = [r[0] for r in records]
    return dict(
        observations=observations,
        vm_indices=[r[1] for r in records],
        pm_indices=[r[2] for r in records],
        vm_masks=[r[3] for r in records],
        pm_masks=[r[4] for r in records],
    )


class TestEvaluateActionsBatchParity:
    @pytest.mark.parametrize("action_mode", ["two_stage", "penalty"])
    def test_outputs_match_per_transition(self, snapshot, action_mode):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, action_mode=action_mode)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        env = make_env(snapshot, penalty=-1.0 if action_mode == "penalty" else None)
        records = collect_steps(env, policy, 5, np.random.default_rng(1))
        log_probs, entropies, values = policy.evaluate_actions_batch(**batch_args(records))
        assert log_probs.shape == (5,) and entropies.shape == (5,) and values.shape == (5,)
        for index, (obs, vm_index, pm_index, vm_mask, pm_mask) in enumerate(records):
            log_prob, entropy, value = policy.evaluate_actions(
                obs, vm_index, pm_index, vm_mask, pm_mask
            )
            assert log_probs.numpy()[index] == pytest.approx(log_prob.numpy()[0], abs=1e-8)
            assert entropies.numpy()[index] == pytest.approx(entropy.numpy()[0], abs=1e-8)
            assert values.numpy()[index] == pytest.approx(value.numpy()[0], abs=1e-8)

    def test_gradients_match_per_transition(self, snapshot):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        env = make_env(snapshot)
        records = collect_steps(env, policy, 4, np.random.default_rng(2))

        # Reference: per-transition forwards, mean loss over the minibatch.
        for parameter in policy.parameters():
            parameter.zero_grad()
        losses = []
        for obs, vm_index, pm_index, vm_mask, pm_mask in records:
            log_prob, entropy, value = policy.evaluate_actions(
                obs, vm_index, pm_index, vm_mask, pm_mask
            )
            losses.append(-log_prob.sum() + (value * value).sum() - 0.01 * entropy.sum())
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        (total / float(len(losses))).backward()
        reference = {
            name: parameter.grad.copy()
            for name, parameter in policy.named_parameters()
            if parameter.grad is not None
        }

        for parameter in policy.parameters():
            parameter.zero_grad()
        log_probs, entropies, values = policy.evaluate_actions_batch(**batch_args(records))
        (-log_probs + values * values - entropies * 0.01).mean().backward()
        batched = {
            name: parameter.grad
            for name, parameter in policy.named_parameters()
            if parameter.grad is not None
        }

        assert set(batched) == set(reference)
        for name, grad in reference.items():
            np.testing.assert_allclose(batched[name], grad, atol=1e-8, err_msg=name)

    def test_cached_feature_batches_match_fresh(self, snapshot):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        env = make_env(snapshot)
        records = collect_steps(env, policy, 3, np.random.default_rng(3))
        args = batch_args(records)
        fresh = policy.evaluate_actions_batch(**args)
        cached = policy.evaluate_actions_batch(
            **args, feature_batches=[build_feature_batch(obs) for obs in args["observations"]]
        )
        for fresh_tensor, cached_tensor in zip(fresh, cached):
            np.testing.assert_allclose(cached_tensor.numpy(), fresh_tensor.numpy(), atol=1e-12)

    def test_ragged_minibatch_falls_back(self, snapshot):
        other_spec = ClusterSpec(name="batched-update-small", num_pms=4,
                                 target_utilization=0.6, best_fit_fraction=0.3)
        other = SnapshotGenerator(other_spec, seed=11).generate()
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        records = collect_steps(make_env(snapshot), policy, 2, np.random.default_rng(4))
        records += collect_steps(make_env(other), policy, 2, np.random.default_rng(5))
        sizes = {(r[0].num_pms, r[0].num_vms) for r in records}
        assert len(sizes) > 1, "fixture must produce a genuinely ragged minibatch"
        log_probs, entropies, values = policy.evaluate_actions_batch(**batch_args(records))
        assert log_probs.shape == (4,)
        for index, (obs, vm_index, pm_index, vm_mask, pm_mask) in enumerate(records):
            log_prob, entropy, value = policy.evaluate_actions(
                obs, vm_index, pm_index, vm_mask, pm_mask
            )
            assert log_probs.numpy()[index] == pytest.approx(log_prob.numpy()[0], abs=1e-10)
            assert entropies.numpy()[index] == pytest.approx(entropy.numpy()[0], abs=1e-10)
            assert values.numpy()[index] == pytest.approx(value.numpy()[0], abs=1e-10)


class TestTreeGroupingParity:
    def test_grouped_stage_matches_dense_masked_layer(self, snapshot):
        """Padded per-tree attention must equal the dense masked tree stage."""
        from repro.core.features import build_tree_mask, stack_feature_batches
        from repro.nn import AttentionMask, Tensor, TransformerEncoderLayer, concatenate

        envs = [make_env(snapshot) for _ in range(3)]
        observations = [env.reset() for env in envs]
        batch = stack_feature_batches([build_feature_batch(obs) for obs in observations])
        grouping = batch.tree_grouping()
        assert grouping is not None
        rng = np.random.default_rng(0)
        layer = TransformerEncoderLayer(16, 2, 32, rng=rng)
        combined = Tensor(
            rng.normal(size=(len(observations), batch.sequence_length, 16)),
            requires_grad=True,
        )
        grouped_out = grouping.apply(layer, combined)
        dense_out = layer(combined, mask=AttentionMask(batch.tree_mask))
        np.testing.assert_allclose(grouped_out.numpy(), dense_out.numpy(), atol=1e-10)

        grouped_out.sum().backward()
        grouped_grad = combined.grad.copy()
        combined.zero_grad()
        for parameter in layer.parameters():
            parameter.zero_grad()
        dense_out = layer(combined, mask=AttentionMask(batch.tree_mask))
        dense_out.sum().backward()
        np.testing.assert_allclose(grouped_grad, combined.grad, atol=1e-10)

    def test_grouping_covers_each_position_once(self, snapshot):
        from repro.core.features import stack_feature_batches

        observations = [make_env(snapshot).reset() for _ in range(2)]
        batch = stack_feature_batches([build_feature_batch(obs) for obs in observations])
        grouping = batch.tree_grouping()
        positions = np.concatenate(
            [bucket.members[bucket.valid] for bucket in grouping.buckets]
        )
        assert positions.size == 2 * batch.sequence_length
        assert np.array_equal(np.sort(positions), np.arange(2 * batch.sequence_length))


class TestReferenceOpsParity:
    def test_reference_substrate_matches_fast_path(self, snapshot):
        """`reference_ops` (seed substrate) must compute the same quantities
        and gradients as the fused/sparse fast path — it is what the update
        benchmark times as `legacy`."""
        from repro.nn import reference_ops

        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        env = make_env(snapshot)
        records = collect_steps(env, policy, 3, np.random.default_rng(6))
        args = batch_args(records)

        def run():
            for parameter in policy.parameters():
                parameter.zero_grad()
            log_probs, entropies, values = policy.evaluate_actions_batch(**args)
            (-log_probs + values * values - entropies * 0.01).mean().backward()
            return (
                log_probs.numpy().copy(),
                {n: p.grad.copy() for n, p in policy.named_parameters() if p.grad is not None},
            )

        fast_out, fast_grads = run()
        with reference_ops():
            ref_out, ref_grads = run()
        np.testing.assert_allclose(ref_out, fast_out, atol=1e-8)
        assert set(ref_grads) == set(fast_grads)
        for name, grad in ref_grads.items():
            np.testing.assert_allclose(fast_grads[name], grad, atol=1e-8, err_msg=name)


class TestBatchedActorForwards:
    def test_vm_and_pm_actor_batched_vs_single(self, snapshot):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        envs = [make_env(snapshot) for _ in range(3)]
        observations = [env.reset() for env in envs]
        stacked = stack_feature_batches([build_feature_batch(obs) for obs in observations])
        stacked_output = policy.extractor(stacked)
        vm_logits = policy.vm_actor(stacked_output)
        assert vm_logits.shape == (3, observations[0].num_vms)
        vm_indices = [1, 4, 2]
        pm_logits = policy.pm_actor.forward_batch(stacked_output, vm_indices)
        assert pm_logits.shape == (3, observations[0].num_pms)
        for index, observation in enumerate(observations):
            single_output = policy.extractor(build_feature_batch(observation))
            np.testing.assert_allclose(
                vm_logits.numpy()[index], policy.vm_actor(single_output).numpy(), atol=1e-8
            )
            np.testing.assert_allclose(
                pm_logits.numpy()[index],
                policy.pm_actor(single_output, vm_indices[index]).numpy(),
                atol=1e-8,
            )

    def test_forward_batch_rejects_bad_indices(self, snapshot):
        config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1)
        policy = TwoStagePolicy(config, rng=np.random.default_rng(0))
        observations = [make_env(snapshot).reset() for _ in range(2)]
        stacked = stack_feature_batches([build_feature_batch(obs) for obs in observations])
        stacked_output = policy.extractor(stacked)
        with pytest.raises(ValueError):
            policy.pm_actor.forward_batch(stacked_output, [0])  # wrong length
        with pytest.raises(IndexError):
            policy.pm_actor.forward_batch(stacked_output, [0, observations[0].num_vms])


class TestBatchedTrainerUpdateParity:
    @pytest.mark.parametrize("action_mode", ["two_stage", "penalty"])
    def test_update_matches_per_transition_reference(self, snapshot, action_mode):
        model_config = ModelConfig(embed_dim=16, num_heads=2, num_blocks=1,
                                   action_mode=action_mode)

        def run(batched: bool):
            policy = TwoStagePolicy(model_config, rng=np.random.default_rng(0))
            trainer = PPOTrainer(
                policy,
                make_env(snapshot, penalty=-1.0 if action_mode == "penalty" else None),
                PPOConfig(rollout_steps=8, minibatch_size=4, update_epochs=2, seed=0,
                          batched_updates=batched),
            )
            buffer = trainer.collect_rollout()
            stats = trainer.update(buffer)
            return stats, {name: p.data.copy() for name, p in policy.named_parameters()}

        batched_stats, batched_params = run(True)
        loop_stats, loop_params = run(False)
        for key in ("policy_loss", "value_loss", "entropy", "approx_kl"):
            assert batched_stats[key] == pytest.approx(loop_stats[key], abs=1e-8)
        for name, data in loop_params.items():
            np.testing.assert_allclose(batched_params[name], data, atol=1e-8, err_msg=name)


class TestThresholdRegression:
    def test_cutoff_ignores_masked_zero_probabilities(self):
        # Five masked actions carry zero probability; the §3.4 quantile must
        # be taken over the feasible (positive) entries, so the weakest
        # feasible action is dropped even though most entries are zero.
        probs = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.5, 0.3, 0.2])
        thresholded = _apply_threshold(probs.copy(), 0.5)
        assert thresholded[7] == 0.0
        np.testing.assert_allclose(thresholded[5:7], [0.625, 0.375])
        assert thresholded.sum() == pytest.approx(1.0)

    def test_no_positive_entries_left_untouched(self):
        probs = np.array([0.0, 1.0, 0.0])
        np.testing.assert_allclose(_apply_threshold(probs.copy(), 0.9), probs)
