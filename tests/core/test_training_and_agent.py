"""Integration-level tests for PPO training, risk-seeking evaluation and the agent API."""

import numpy as np
import pytest

from repro.baselines import evaluate_plan
from repro.cluster import ConstraintConfig
from repro.core import (
    ModelConfig,
    PPOConfig,
    PPOTrainer,
    RiskSeekingConfig,
    TwoStagePolicy,
    VMR2LAgent,
    VMR2LConfig,
    risk_seeking_evaluate,
    rollout_trajectory,
    vm_selection_probability_histogram,
)
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import MigrationMinimizationObjective, VMRescheduleEnv


def tiny_config(action_mode="two_stage", extractor="sparse", mnl=4):
    return VMR2LConfig(
        model=ModelConfig(
            embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32,
            extractor=extractor, action_mode=action_mode,
        ),
        ppo=PPOConfig(rollout_steps=16, minibatch_size=8, update_epochs=1, learning_rate=1e-3),
        risk_seeking=RiskSeekingConfig(num_trajectories=3),
        migration_limit=mnl,
    )


@pytest.fixture(scope="module")
def snapshots():
    generator = SnapshotGenerator(ClusterSpec(num_pms=6, target_utilization=0.7), seed=0)
    return generator.generate_many(3)


class TestPPOTrainer:
    def test_collect_rollout_fills_buffer(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(snapshots[0], ConstraintConfig(migration_limit=4))
        trainer = PPOTrainer(policy, env, config.ppo)
        buffer = trainer.collect_rollout()
        assert len(buffer) == config.ppo.rollout_steps
        assert all(np.isfinite(t.reward) for t in buffer.transitions)
        assert trainer.global_step == config.ppo.rollout_steps

    def test_update_changes_parameters(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(snapshots[0], ConstraintConfig(migration_limit=4))
        trainer = PPOTrainer(policy, env, config.ppo)
        before = {name: value.copy() for name, value in policy.state_dict().items()}
        buffer = trainer.collect_rollout()
        stats = trainer.update(buffer)
        after = policy.state_dict()
        assert any(not np.allclose(before[name], after[name]) for name in before)
        assert np.isfinite(stats["policy_loss"])
        assert np.isfinite(stats["value_loss"])

    def test_train_records_history(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(snapshots[0], ConstraintConfig(migration_limit=4))
        trainer = PPOTrainer(policy, env, config.ppo)
        history = trainer.train(total_steps=32)
        assert len(history) == 2
        assert history[0].global_step == 16
        assert history[-1].global_step == 32

    def test_train_rejects_bad_steps(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(snapshots[0], ConstraintConfig(migration_limit=4))
        with pytest.raises(ValueError):
            PPOTrainer(policy, env, config.ppo).train(total_steps=0)

    def test_training_with_penalty_mode(self, snapshots):
        """The §5.4 Penalty ablation trains without masks and a -5 penalty."""
        config = tiny_config(action_mode="penalty")
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(
            snapshots[0], ConstraintConfig(migration_limit=4), illegal_action_penalty=-5.0
        )
        trainer = PPOTrainer(policy, env, config.ppo)
        history = trainer.train(total_steps=16)
        assert len(history) == 1

    def test_training_with_full_joint_mode(self, snapshots):
        config = tiny_config(action_mode="full_joint")
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(snapshots[0], ConstraintConfig(migration_limit=4))
        trainer = PPOTrainer(policy, env, config.ppo)
        history = trainer.train(total_steps=16)
        assert len(history) == 1


class TestRiskSeeking:
    def test_rollout_trajectory_is_feasible_plan(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        trajectory = rollout_trajectory(policy, snapshots[0], 4, np.random.default_rng(0))
        assert len(trajectory.plan) <= 4
        assert 0.0 <= trajectory.final_objective <= 1.0

    def test_best_trajectory_not_worse_than_any_sample(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        outcome = risk_seeking_evaluate(
            policy, snapshots[0], 4, config=RiskSeekingConfig(num_trajectories=4), seed=0
        )
        assert outcome.num_trajectories == 4
        assert outcome.best.final_objective == pytest.approx(outcome.objectives().min())

    def test_more_trajectories_never_hurt(self, snapshots):
        """Core property behind Fig. 12: the min over a superset is <= min over a subset."""
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        few = risk_seeking_evaluate(
            policy, snapshots[0], 4, config=RiskSeekingConfig(num_trajectories=2, greedy_first=True), seed=7
        )
        many = risk_seeking_evaluate(
            policy, snapshots[0], 4, config=RiskSeekingConfig(num_trajectories=6, greedy_first=True), seed=7
        )
        assert many.best.final_objective <= few.best.final_objective + 1e-9

    def test_probability_histogram(self, snapshots):
        config = tiny_config()
        policy = TwoStagePolicy(config.model, rng=np.random.default_rng(0))
        histogram = vm_selection_probability_histogram(policy, snapshots[:1], migration_limit=3)
        assert histogram["counts"].sum() == len(histogram["probabilities"])
        assert histogram["probabilities"].min() >= 0.0


class TestVMR2LAgent:
    def test_agent_plan_respects_mnl_and_is_reschedulable(self, snapshots):
        agent = VMR2LAgent(tiny_config(), constraint_config=ConstraintConfig(migration_limit=4), seed=0)
        result = agent.compute_plan(snapshots[0], migration_limit=4)
        evaluation = evaluate_plan(snapshots[0], result)
        assert result.num_migrations <= 4
        assert evaluation.num_skipped == 0
        assert "best_objective" in result.info

    def test_agent_training_improves_or_matches_initial(self, snapshots):
        agent = VMR2LAgent(tiny_config(), constraint_config=ConstraintConfig(migration_limit=4), seed=0)
        history = agent.train_on_states(snapshots, total_steps=32, eval_states=snapshots[:1])
        assert len(history) == 2
        assert history[-1].eval_metric is not None
        evaluation = agent.evaluate(snapshots[:1], migration_limit=4)
        assert evaluation["mean_final_objective"] <= evaluation["mean_initial_objective"] + 1e-9

    def test_agent_empty_training_set_rejected(self):
        agent = VMR2LAgent(tiny_config())
        with pytest.raises(ValueError):
            agent.train_on_states([], total_steps=16)
        with pytest.raises(ValueError):
            agent.evaluate([], migration_limit=4)

    def test_agent_save_load_roundtrip(self, tmp_path, snapshots):
        agent = VMR2LAgent(tiny_config(), seed=0)
        path = agent.save(tmp_path / "vmr2l_ckpt")
        loaded = VMR2LAgent.load(path)
        original_params = agent.policy.state_dict()
        loaded_params = loaded.policy.state_dict()
        for name in original_params:
            np.testing.assert_allclose(original_params[name], loaded_params[name])
        assert loaded.config.migration_limit == agent.config.migration_limit

    def test_checkpoint_is_small(self, tmp_path):
        """The paper highlights checkpoints under 2 MB."""
        agent = VMR2LAgent(tiny_config(), seed=0)
        path = agent.save(tmp_path / "small_ckpt")
        assert path.stat().st_size < 2 * 1024 * 1024

    def test_agent_with_min_migration_objective(self, snapshots):
        objective = MigrationMinimizationObjective(fr_goal=0.9)
        agent = VMR2LAgent(
            tiny_config(), objective=objective,
            constraint_config=ConstraintConfig(migration_limit=4), seed=0,
        )
        result = agent.compute_plan(snapshots[0], migration_limit=4)
        # The goal (FR <= 0.9) is already met, so the plan should stop immediately.
        assert result.num_migrations <= 1

    def test_plan_single_trajectory(self, snapshots):
        agent = VMR2LAgent(tiny_config(), seed=0)
        plan = agent.plan_single_trajectory(snapshots[0], migration_limit=3)
        assert len(plan) <= 3
