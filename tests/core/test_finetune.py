"""Tests for top-layer finetuning (§7 'Adapting to New data')."""

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, PPOConfig, RiskSeekingConfig, VMR2LAgent, VMR2LConfig
from repro.core.finetune import (
    finetune_top_layers,
    freeze_extractor,
    head_parameter_names,
    unfreeze_all,
)
from repro.datasets import generate_workload_snapshots


def tiny_agent(seed=0):
    config = VMR2LConfig(
        model=ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32),
        ppo=PPOConfig(rollout_steps=16, minibatch_size=8, update_epochs=1, learning_rate=1e-3),
        risk_seeking=RiskSeekingConfig(num_trajectories=2),
        migration_limit=4,
    )
    return VMR2LAgent(config, constraint_config=ConstraintConfig(migration_limit=4), seed=seed)


@pytest.fixture(scope="module")
def workload_states():
    low = generate_workload_snapshots("low", 2, base="small", seed=0, num_pms=6)
    high = generate_workload_snapshots("high", 2, base="small", seed=0, num_pms=6)
    return low, high


class TestFreezing:
    def test_head_parameter_names_exclude_extractor(self):
        agent = tiny_agent()
        names = head_parameter_names(agent)
        assert names
        assert all(not name.startswith("extractor.") for name in names)

    def test_freeze_and_unfreeze_roundtrip(self):
        agent = tiny_agent()
        frozen = freeze_extractor(agent)
        assert frozen
        assert all(
            not parameter.requires_grad
            for name, parameter in agent.policy.named_parameters()
            if name.startswith("extractor.")
        )
        unfreeze_all(agent)
        assert all(parameter.requires_grad for _, parameter in agent.policy.named_parameters())


class TestFinetuning:
    def test_finetune_updates_heads_but_not_extractor(self, workload_states):
        low, high = workload_states
        agent = tiny_agent()
        agent.train_on_states(low, total_steps=16)
        extractor_before = {
            name: value.copy()
            for name, value in agent.policy.state_dict().items()
            if name.startswith("extractor.")
        }
        heads_before = {
            name: value.copy()
            for name, value in agent.policy.state_dict().items()
            if not name.startswith("extractor.")
        }
        history = finetune_top_layers(agent, high, total_steps=16)
        assert len(history) == 1
        after = agent.policy.state_dict()
        for name, value in extractor_before.items():
            np.testing.assert_allclose(after[name], value)
        assert any(not np.allclose(after[name], value) for name, value in heads_before.items())
        # Everything is trainable again after finetuning.
        assert all(parameter.requires_grad for _, parameter in agent.policy.named_parameters())

    def test_finetuned_agent_still_plans(self, workload_states):
        low, high = workload_states
        agent = tiny_agent()
        agent.train_on_states(low, total_steps=16)
        finetune_top_layers(agent, high, total_steps=16)
        result = agent.compute_plan(high[0], migration_limit=4)
        assert result.num_migrations <= 4

    def test_validation(self, workload_states):
        low, _ = workload_states
        agent = tiny_agent()
        with pytest.raises(ValueError):
            finetune_top_layers(agent, [], total_steps=16)
        with pytest.raises(ValueError):
            finetune_top_layers(agent, low, total_steps=0)
        with pytest.raises(ValueError):
            finetune_top_layers(agent, low, total_steps=16, learning_rate_scale=0.0)
