"""Incremental StepCache + incremental featurization vs fresh recompute.

The step cache must be *exact*: over full multi-step episodes (including
auto-reset into a new episode), cached forwards match fresh featurize/encode
to ≤1e-10 and greedy plans are identical to fresh-recompute plans.
"""

import numpy as np
import pytest

from repro.cluster import ConstraintConfig
from repro.core.agent import VMR2LAgent
from repro.core.config import ModelConfig, VMR2LConfig
from repro.core.features import build_feature_batch, patch_feature_batch
from repro.core.policy import TwoStagePolicy
from repro.core.step_cache import StepCache
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env.vmr_env import VMRescheduleEnv
from repro.nn import no_grad


def _state(num_pms=12, seed=0, utilization=0.8):
    spec = ClusterSpec(
        name="step-cache",
        num_pms=num_pms,
        target_utilization=utilization,
        best_fit_fraction=0.3,
    )
    return SnapshotGenerator(spec, seed=seed).generate()


class TestIncrementalObservation:
    def test_incremental_builds_equal_fresh(self):
        """Every patched observation equals a from-scratch featurization."""
        from repro.cluster import ConstraintChecker
        from repro.env.observation import ObservationBuilder

        env = VMRescheduleEnv(_state(seed=3), ConstraintConfig(migration_limit=8))
        obs = env.reset()
        rng = np.random.default_rng(0)
        config = env.builder.checker.config
        deltas_seen = 0
        for step in range(16):
            fresh = ObservationBuilder(ConstraintChecker(config)).build(
                env.state, env.migrations_left()
            )
            assert np.array_equal(obs.pm_features, fresh.pm_features)
            assert np.array_equal(obs.vm_features, fresh.vm_features)
            assert np.array_equal(obs.vm_mask, fresh.vm_mask)
            assert np.array_equal(obs.vm_source_pm, fresh.vm_source_pm)
            if obs.delta is not None and obs.delta.step_index > 0:
                deltas_seen += 1
                # The journalled move must appear in the delta's moved rows.
                assert obs.delta.moved_vm_rows.size >= 1
            if not obs.vm_mask.any():
                break
            vm = rng.choice(np.flatnonzero(obs.vm_mask))
            pm = rng.choice(np.flatnonzero(env.pm_action_mask(vm)))
            obs, _, done, _ = env.step((vm, pm))
            if done:
                obs = env.reset()
                # Auto-reset copies the template: a fresh chain begins.
                assert obs.delta is None or obs.delta.step_index == 0
        assert deltas_seen > 0

    def test_structural_change_falls_back(self):
        """add_vm invalidates the SoA view; the next build starts a new chain."""
        from repro.cluster.machine import VirtualMachine
        from repro.cluster.vm_types import VMType

        env = VMRescheduleEnv(_state(seed=4), ConstraintConfig(migration_limit=6))
        obs = env.reset()
        vm = np.flatnonzero(obs.vm_mask)[0]
        pm = np.flatnonzero(env.pm_action_mask(vm))[0]
        obs, _, _, _ = env.step((vm, pm))
        assert obs.delta is not None and obs.delta.step_index == 1
        new_id = max(env.state.vms) + 1
        env.state.add_vm(VirtualMachine(vm_id=new_id, vm_type=VMType("t", 1, 4, 1)))
        rebuilt = env.builder.build(env.state, env.migrations_left())
        assert rebuilt.delta is None or rebuilt.delta.step_index == 0
        assert rebuilt.num_vms == obs.num_vms + 1

    def test_patch_feature_batch_matches_fresh(self):
        env = VMRescheduleEnv(_state(seed=5), ConstraintConfig(migration_limit=8))
        obs = env.reset()
        rng = np.random.default_rng(1)
        previous = None
        for _ in range(8):
            batch = patch_feature_batch(previous, obs)
            fresh = build_feature_batch(obs)
            assert np.array_equal(batch.membership, fresh.membership)
            for got, expected in zip(batch.tree_layout(), fresh.tree_layout()):
                np.testing.assert_array_equal(got, expected)
            previous = batch
            if not obs.vm_mask.any():
                break
            vm = rng.choice(np.flatnonzero(obs.vm_mask))
            pm = rng.choice(np.flatnonzero(env.pm_action_mask(vm)))
            obs, _, done, _ = env.step((vm, pm))
            if done:
                break


class TestStepCacheEncoder:
    @pytest.mark.parametrize("model", [
        ModelConfig(),
        ModelConfig(extractor="vanilla"),
        ModelConfig(attention_impl="chunked", attention_chunk_size=16),
        ModelConfig(inference_dtype="float32"),
    ], ids=["sparse", "vanilla", "chunked", "float32"])
    def test_cached_forward_matches_fresh_over_episodes(self, model):
        policy = TwoStagePolicy(model, rng=np.random.default_rng(0))
        env = VMRescheduleEnv(_state(seed=6), ConstraintConfig(migration_limit=5))
        obs = env.reset()
        cache = StepCache()
        rng = np.random.default_rng(2)
        episodes = 0
        # f64 parity is ≤1e-10; the float32 inference mode carries f32
        # epsilon (~1e-7 per op) through the stack instead.
        atol = 1e-10 if model.inference_dtype == "float64" else 1e-4
        with no_grad():
            for _ in range(14):  # spans ≥2 episodes (limit 5) incl. auto-reset
                _, cached = cache.forward(policy.extractor, obs)
                fresh = policy.extractor(build_feature_batch(obs))
                np.testing.assert_allclose(
                    cached.vm_embeddings.data, fresh.vm_embeddings.data, rtol=0, atol=atol
                )
                np.testing.assert_allclose(
                    cached.pm_embeddings.data, fresh.pm_embeddings.data, rtol=0, atol=atol
                )
                np.testing.assert_allclose(
                    cached.vm_pm_scores, fresh.vm_pm_scores, rtol=0, atol=atol
                )
                if not obs.vm_mask.any():
                    break
                vm = rng.choice(np.flatnonzero(obs.vm_mask))
                pm = rng.choice(np.flatnonzero(env.pm_action_mask(vm)))
                obs, _, done, _ = env.step((vm, pm))
                if done:
                    obs = env.reset()
                    episodes += 1
        assert episodes >= 1
        assert cache.hits > 0

    def test_refuses_outside_inference(self):
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        cache = StepCache()
        assert not cache.usable(policy.extractor)  # grad enabled
        with no_grad():
            assert cache.usable(policy.extractor)

    def test_stacked_matches_single(self):
        """forward_batch over several episodes equals per-row fresh forwards."""
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        envs = [
            VMRescheduleEnv(_state(seed=7), ConstraintConfig(migration_limit=6))
            for _ in range(3)
        ]
        observations = [env.reset() for env in envs]
        cache = StepCache()
        rng = np.random.default_rng(3)
        with no_grad():
            for _ in range(6):
                _, stacked = cache.forward_batch(policy.extractor, observations)
                for row, obs in enumerate(observations):
                    fresh = policy.extractor(build_feature_batch(obs))
                    np.testing.assert_allclose(
                        stacked.vm_embeddings.data[row],
                        fresh.vm_embeddings.data,
                        rtol=0, atol=1e-10,
                    )
                    np.testing.assert_allclose(
                        stacked.vm_pm_scores[row],
                        fresh.vm_pm_scores,
                        rtol=0, atol=1e-10,
                    )
                for index, env in enumerate(envs):
                    obs = observations[index]
                    if not obs.vm_mask.any():
                        observations[index] = env.reset()
                        continue
                    vm = rng.choice(np.flatnonzero(obs.vm_mask))
                    pm = rng.choice(np.flatnonzero(env.pm_action_mask(vm)))
                    next_obs, _, done, _ = env.step((vm, pm))
                    observations[index] = env.reset() if done else next_obs
        assert cache.hits > 0


class TestStepCachePlans:
    def test_plan_batch_plans_identical(self):
        states = [_state(seed=s) for s in range(4)]
        agent = VMR2LAgent(seed=0)
        cached = agent.plan_batch(
            states, migration_limits=5, greedy=True, seed=0, max_active=2,
            use_step_cache=True,
        )
        fresh = agent.plan_batch(
            states, migration_limits=5, greedy=True, seed=0, max_active=2,
            use_step_cache=False,
        )
        for got, expected in zip(cached, fresh):
            assert [(m.vm_id, m.dest_pm_id) for m in got.plan] == [
                (m.vm_id, m.dest_pm_id) for m in expected.plan
            ]
            assert got.info["final_objective"] == pytest.approx(
                expected.info["final_objective"]
            )

    def test_plan_batch_float32_identical(self):
        states = [_state(seed=s) for s in range(2)]
        config = VMR2LConfig(model=ModelConfig(inference_dtype="float32"))
        agent = VMR2LAgent(config=config, seed=0)
        cached = agent.plan_batch(states, 4, greedy=True, seed=0, use_step_cache=True)
        fresh = agent.plan_batch(states, 4, greedy=True, seed=0, use_step_cache=False)
        for got, expected in zip(cached, fresh):
            assert [(m.vm_id, m.dest_pm_id) for m in got.plan] == [
                (m.vm_id, m.dest_pm_id) for m in expected.plan
            ]

    def test_rollout_trajectory_with_cache(self):
        from repro.core.risk_seeking import rollout_trajectory

        state = _state(seed=9)
        policy = TwoStagePolicy(ModelConfig(), rng=np.random.default_rng(0))
        fresh = rollout_trajectory(
            policy, state, 5, np.random.default_rng(0), greedy=True
        )
        cached = rollout_trajectory(
            policy, state, 5, np.random.default_rng(0), greedy=True,
            step_cache=StepCache(),
        )
        assert [(m.vm_id, m.dest_pm_id) for m in cached.plan] == [
            (m.vm_id, m.dest_pm_id) for m in fresh.plan
        ]
        assert cached.final_objective == pytest.approx(fresh.final_objective)
