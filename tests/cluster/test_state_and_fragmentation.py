"""Tests for ClusterState placement bookkeeping and fragment-rate metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    BOTH_NUMAS,
    ClusterState,
    PhysicalMachine,
    Placement,
    PMType,
    VirtualMachine,
    VMTypeCatalog,
    fragment_rate,
)
from repro.cluster.fragmentation import (
    max_hostable_vms,
    memory_fragment_rate,
    mixed_objective,
    numa_cpu_fragment,
    pm_cpu_fragment,
    pm_fragment_score,
)

CATALOG = VMTypeCatalog.main()


def make_pm(pm_id, cpu=64, memory=256):
    return PhysicalMachine(pm_id=pm_id, pm_type=PMType(f"pm-{cpu}c", cpu=cpu, memory=memory))


def make_vm(vm_id, type_name="xlarge", pm_id=None, numa_id=None, group=None):
    return VirtualMachine(
        vm_id=vm_id,
        vm_type=CATALOG.get(type_name),
        pm_id=pm_id,
        numa_id=numa_id,
        anti_affinity_group=group,
    )


def build_paper_example():
    """The Fig. 2-3 example: PM1 with 12 free cores, PM2 with 20 free cores.

    PM1 (32 cores, 16 per NUMA) hosts a 4-core VM and a 16-core VM, leaving 12
    free cores that are all fragments.  PM2 (64 cores, 32 per NUMA) has one
    NUMA fully packed and 20 free cores on the other, of which 4 are fragments.
    Total: 16 fragmented cores out of 32 free → FR 50%, exactly the paper's
    worked example.  Migrating the 4-core VM to PM2 drops the FR to 0.
    """
    pm1 = make_pm(1, cpu=32, memory=128)
    pm2 = make_pm(2, cpu=64, memory=256)
    vms = [
        make_vm(1, "xlarge", pm_id=1, numa_id=0),     # 4 cores on PM1/NUMA0 -> 12 free
        make_vm(2, "4xlarge", pm_id=1, numa_id=1),    # 16 cores on PM1/NUMA1 -> 0 free
        make_vm(3, "4xlarge", pm_id=2, numa_id=0),    # 16 cores on PM2/NUMA0
        make_vm(4, "4xlarge", pm_id=2, numa_id=0),    # 16 cores on PM2/NUMA0 -> 0 free
        make_vm(5, "2xlarge", pm_id=2, numa_id=1),    # 8 cores on PM2/NUMA1
        make_vm(6, "xlarge", pm_id=2, numa_id=1),     # 4 cores on PM2/NUMA1 -> 20 free
    ]
    return ClusterState(pms=[pm1, pm2], vms=vms)


class TestFragmentMetricsPaperExample:
    def test_initial_fr_is_fifty_percent(self):
        state = build_paper_example()
        assert state.fragment_rate() == pytest.approx(0.5)

    def test_migrating_vm1_to_pm2_reaches_zero_fr(self):
        """Fig. 3: moving the 4-core VM off PM1 leaves 16 free cores on each PM."""
        state = build_paper_example()
        state.migrate_vm(1, dest_pm_id=2)
        assert state.fragment_rate() == pytest.approx(0.0)

    def test_total_fragment_value(self):
        state = build_paper_example()
        assert state.total_fragment() == pytest.approx(16.0)

    def test_pm_fragment_decomposition(self):
        state = build_paper_example()
        assert state.pm_fragment(1) == pytest.approx(12.0)
        assert state.pm_fragment(2) == pytest.approx(4.0)


class TestFragmentationFunctions:
    def test_numa_fragment_modulo(self):
        pm = make_pm(0, cpu=64)
        pm.numas[0].allocate(1, cpu=10, memory=10)
        assert numa_cpu_fragment(pm.numas[0], 16) == pytest.approx(22 % 16)

    def test_empty_cluster_fr_zero(self):
        assert fragment_rate([], 16) == 0.0

    def test_fully_packed_cluster_fr_zero(self):
        pm = make_pm(0, cpu=32, memory=128)
        pm.numas[0].allocate(1, cpu=16, memory=32)
        pm.numas[1].allocate(2, cpu=16, memory=32)
        assert fragment_rate([pm], 16) == 0.0

    def test_fragment_score_uses_reward_scale(self):
        pm = make_pm(0, cpu=32)
        pm.numas[0].allocate(1, cpu=4, memory=4)
        # free: 12 and 16 -> fragments 12 + 0 = 12, scaled by 64
        assert pm_fragment_score(pm, 16) == pytest.approx(12 / 64)

    def test_memory_fragment_rate(self):
        pm = make_pm(0, cpu=64, memory=256)
        pm.numas[0].allocate(1, cpu=4, memory=100)
        # free memory: 28 and 128 -> fragments 28 % 64 + 0 = 28 of 156 free
        assert memory_fragment_rate([pm], 64) == pytest.approx(28 / 156)

    def test_mixed_objective_bounds_and_validation(self):
        pm = make_pm(0, cpu=64)
        assert 0.0 <= mixed_objective([pm], weight=0.3) <= 1.0
        with pytest.raises(ValueError):
            mixed_objective([pm], weight=1.5)
        with pytest.raises(ValueError):
            mixed_objective([pm], weight=0.5, secondary_cores=None, secondary_memory=None)

    def test_max_hostable_vms(self):
        pm = make_pm(0, cpu=64)  # 32 per NUMA
        assert max_hostable_vms(pm, 16) == 4
        pm.numas[0].allocate(1, cpu=20, memory=8)
        assert max_hostable_vms(pm, 16) == 2

    def test_invalid_granularity_raises(self):
        pm = make_pm(0)
        with pytest.raises(ValueError):
            numa_cpu_fragment(pm.numas[0], 0)


class TestClusterStatePlacement:
    def test_initial_placement_applied(self):
        state = build_paper_example()
        assert state.vms[1].is_placed
        assert 1 in state.pms[1].numas[0].vm_ids

    def test_place_remove_roundtrip_restores_resources(self):
        state = build_paper_example()
        free_before = state.pms[2].free_cpu
        vm = make_vm(50, "xlarge")
        state.add_vm(vm, Placement(pm_id=2, numa_id=1))
        assert state.pms[2].free_cpu == free_before - 4
        state.remove_vm(50)
        assert state.pms[2].free_cpu == free_before

    def test_double_numa_vm_occupies_both_numas(self):
        pm = make_pm(0, cpu=128, memory=512)
        state = ClusterState(pms=[pm], vms=[])
        vm = make_vm(9, "16xlarge")
        state.add_vm(vm, Placement(pm_id=0, numa_id=BOTH_NUMAS))
        assert pm.numas[0].free_cpu == 64 - 32
        assert pm.numas[1].free_cpu == 64 - 32

    def test_double_numa_vm_requires_both_numa_target(self):
        pm = make_pm(0, cpu=128, memory=512)
        state = ClusterState(pms=[pm], vms=[])
        vm = make_vm(9, "16xlarge")
        with pytest.raises(ValueError):
            state.add_vm(vm, Placement(pm_id=0, numa_id=0))

    def test_single_numa_vm_rejects_both_numas(self):
        pm = make_pm(0)
        state = ClusterState(pms=[pm], vms=[])
        with pytest.raises(ValueError):
            state.add_vm(make_vm(1, "xlarge"), Placement(pm_id=0, numa_id=BOTH_NUMAS))

    def test_placing_already_placed_vm_raises(self):
        state = build_paper_example()
        with pytest.raises(ValueError):
            state.place_vm(1, Placement(pm_id=2, numa_id=0))

    def test_migrate_to_same_pm_rejected(self):
        state = build_paper_example()
        with pytest.raises(ValueError):
            state.migrate_vm(1, dest_pm_id=1)

    def test_migrate_infeasible_restores_original_placement(self):
        pm1 = make_pm(1, cpu=32, memory=128)
        pm2 = make_pm(2, cpu=32, memory=128)
        blocker = make_vm(10, "4xlarge", pm_id=2, numa_id=0)
        blocker2 = make_vm(11, "4xlarge", pm_id=2, numa_id=1)
        mover = make_vm(12, "4xlarge", pm_id=1, numa_id=0)
        state = ClusterState(pms=[pm1, pm2], vms=[blocker, blocker2, mover])
        with pytest.raises(ValueError):
            state.migrate_vm(12, dest_pm_id=2)
        assert state.vms[12].pm_id == 1
        assert state.pms[1].free_cpu == 32 - 16

    def test_best_numa_prefers_smallest_resulting_fragment(self):
        pm = make_pm(0, cpu=64, memory=256)  # 32 cores per NUMA
        filler = make_vm(1, "4xlarge", pm_id=0, numa_id=0)  # NUMA0 left with 16
        mover = make_vm(2, "4xlarge", pm_id=1, numa_id=0)
        state = ClusterState(pms=[pm, make_pm(1, cpu=64, memory=256)], vms=[filler, mover])
        # Moving the 16-core VM onto PM0: NUMA0 (16 free) gives fragment 0,
        # NUMA1 (32 free) gives fragment 16 -> best NUMA is 0.
        assert state.best_numa_for(2, 0) == 0

    def test_remove_vm_from_cluster_deletes_vm(self):
        state = build_paper_example()
        state.remove_vm_from_cluster(1)
        assert 1 not in state.vms
        assert 1 not in state.pms[1].numas[0].vm_ids

    def test_copy_is_deep(self):
        state = build_paper_example()
        clone = state.copy()
        clone.migrate_vm(1, dest_pm_id=2)
        assert state.vms[1].pm_id == 1
        assert clone.vms[1].pm_id == 2
        assert state.fragment_rate() == pytest.approx(0.5)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterState(pms=[make_pm(0), make_pm(0)], vms=[])
        with pytest.raises(ValueError):
            ClusterState(pms=[make_pm(0)], vms=[make_vm(1), make_vm(1)])

    def test_to_from_dict_roundtrip(self):
        state = build_paper_example()
        payload = state.to_dict()
        restored = ClusterState.from_dict(payload)
        assert restored.fragment_rate() == pytest.approx(state.fragment_rate())
        assert sorted(restored.vms) == sorted(state.vms)
        assert restored.vms[1].pm_id == state.vms[1].pm_id

    def test_roundtrip_preserves_everything_copy_preserves(self):
        # Requests carry snapshots through to_dict/from_dict: the round trip
        # must preserve the same observable state a copy() does.
        state = build_paper_example()
        state.fragment_cores = 8  # non-default granularity must survive
        restored = ClusterState.from_dict(state.to_dict())
        assert restored.to_dict() == state.to_dict()
        assert restored.fragment_cores == 8
        assert restored.fragment_rate() == pytest.approx(state.fragment_rate())
        for vm_id, vm in state.vms.items():
            other = restored.vms[vm_id]
            assert (other.pm_id, other.numa_id) == (vm.pm_id, vm.numa_id)
            assert other.anti_affinity_group == vm.anti_affinity_group
            assert other.vm_type == vm.vm_type
        soa, restored_soa = state.arrays(), restored.arrays()
        assert (soa.numa_free_cpu == restored_soa.numa_free_cpu).all()
        assert (soa.numa_free_mem == restored_soa.numa_free_mem).all()

    def test_roundtrip_preserves_unplaced_and_double_numa_vms(self):
        pm = make_pm(1, cpu=128, memory=512)
        placed = make_vm(1, "8xlarge", pm_id=1, numa_id=None)  # double-NUMA
        unplaced = make_vm(2, "xlarge")
        state = ClusterState(pms=[pm], vms=[placed, unplaced])
        restored = ClusterState.from_dict(state.to_dict())
        assert restored.vms[1].numa_id == state.vms[1].numa_id  # BOTH_NUMAS marker
        assert not restored.vms[2].is_placed

    def test_json_roundtrip(self):
        state = build_paper_example()
        restored = ClusterState.from_json(state.to_json())
        assert restored.to_dict() == state.to_dict()

    def test_cpu_utilization(self):
        state = build_paper_example()
        used = 4 + 16 + 16 + 16 + 8 + 4
        assert state.cpu_utilization() == pytest.approx(used / 96)


class TestAntiAffinity:
    def test_conflicting_pms_detected(self):
        pm1, pm2 = make_pm(1), make_pm(2)
        vm_a = make_vm(1, "xlarge", pm_id=1, numa_id=0, group=0)
        vm_b = make_vm(2, "xlarge", pm_id=2, numa_id=0, group=0)
        vm_c = make_vm(3, "xlarge", pm_id=2, numa_id=1, group=None)
        state = ClusterState(pms=[pm1, pm2], vms=[vm_a, vm_b, vm_c])
        assert state.conflicting_pm_ids(1) == {2}
        assert state.conflicting_pm_ids(3) == set()

    def test_feasible_destinations_respect_affinity(self):
        pm1, pm2, pm3 = make_pm(1), make_pm(2), make_pm(3)
        vm_a = make_vm(1, "xlarge", pm_id=1, numa_id=0, group=7)
        vm_b = make_vm(2, "xlarge", pm_id=2, numa_id=0, group=7)
        state = ClusterState(pms=[pm1, pm2, pm3], vms=[vm_a, vm_b])
        assert state.feasible_destination_pms(1) == [3]
        assert state.feasible_destination_pms(1, honor_affinity=False) == [2, 3]

    def test_affinity_ratio(self):
        pm1 = make_pm(1, cpu=128, memory=512)
        vms = [make_vm(i, "large", pm_id=1, numa_id=0, group=0 if i < 3 else None) for i in range(6)]
        state = ClusterState(pms=[pm1], vms=vms)
        # 3 VMs conflict pairwise: 3*2 ordered pairs over 6*5 total pairs.
        assert state.affinity_ratio() == pytest.approx(6 / 30)


class TestPropertyBased:
    @given(st.lists(st.sampled_from(["large", "xlarge", "2xlarge", "4xlarge"]), min_size=1, max_size=12),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_free_cpu_plus_used_cpu_equals_capacity(self, type_names, seed):
        """Resource conservation: allocations never create or destroy capacity."""
        rng = np.random.default_rng(seed)
        pms = [make_pm(i, cpu=64, memory=256) for i in range(3)]
        state = ClusterState(pms=pms, vms=[])
        for vm_id, name in enumerate(type_names):
            vm = make_vm(vm_id, name)
            state.vms[vm_id] = vm
            candidates = [
                (pm_id, numa_id)
                for pm_id in state.pms
                for numa_id in state.feasible_numas(vm_id, pm_id)
            ]
            if not candidates:
                del state.vms[vm_id]
                continue
            pm_id, numa_id = candidates[rng.integers(len(candidates))]
            state.place_vm(vm_id, Placement(pm_id=pm_id, numa_id=numa_id))
        total_capacity = sum(pm.cpu_capacity for pm in state.pms.values())
        total_free = sum(pm.free_cpu for pm in state.pms.values())
        total_used = sum(vm.cpu for vm in state.vms.values() if vm.is_placed)
        assert total_free + total_used == pytest.approx(total_capacity)
        assert 0.0 <= state.fragment_rate() <= 1.0

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_migration_preserves_total_usage_and_fr_bounds(self, seed):
        rng = np.random.default_rng(seed)
        state = build_paper_example()
        used_before = sum(vm.cpu for vm in state.vms.values() if vm.is_placed)
        movable = [vm_id for vm_id in state.vms if state.feasible_destination_pms(vm_id)]
        if movable:
            vm_id = movable[rng.integers(len(movable))]
            dest = state.feasible_destination_pms(vm_id)
            state.migrate_vm(vm_id, dest[rng.integers(len(dest))])
        used_after = sum(vm.cpu for vm in state.vms.values() if vm.is_placed)
        assert used_before == used_after
        assert 0.0 <= state.fragment_rate() <= 1.0
