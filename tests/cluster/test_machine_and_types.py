"""Tests for VM/PM type catalogs and the machine resource accounting."""

import numpy as np
import pytest

from repro.cluster import (
    BOTH_NUMAS,
    NumaNode,
    PhysicalMachine,
    PMType,
    TABLE1_VM_TYPES,
    VirtualMachine,
    VMType,
    VMTypeCatalog,
)
from repro.cluster.vm_types import DEFAULT_PM_TYPE, MULTI_RESOURCE_PM_TYPES


class TestVMTypes:
    def test_table1_matches_paper(self):
        """Table 1: names, CPU, memory (1:2 ratio) and NUMA placement."""
        expected = {
            "large": (2, 4, 1),
            "xlarge": (4, 8, 1),
            "2xlarge": (8, 16, 1),
            "4xlarge": (16, 32, 1),
            "8xlarge": (32, 64, 2),
            "16xlarge": (64, 128, 2),
            "22xlarge": (88, 176, 2),
        }
        catalog = {t.name: t for t in TABLE1_VM_TYPES}
        assert set(catalog) == set(expected)
        for name, (cpu, memory, numa) in expected.items():
            assert catalog[name].cpu == cpu
            assert catalog[name].memory == memory
            assert catalog[name].numa_count == numa

    def test_cpu_memory_ratio_is_one_to_two(self):
        for vm_type in TABLE1_VM_TYPES:
            assert vm_type.memory == 2 * vm_type.cpu

    def test_per_numa_split_for_double_numa(self):
        vm_type = VMType("16xlarge", 64, 128, 2)
        assert vm_type.cpu_per_numa == 32
        assert vm_type.memory_per_numa == 64

    def test_invalid_numa_count_rejected(self):
        with pytest.raises(ValueError):
            VMType("bad", 4, 8, 3)

    def test_double_numa_must_split_evenly(self):
        with pytest.raises(ValueError):
            VMType("bad", 5, 8, 2)

    def test_nonpositive_resources_rejected(self):
        with pytest.raises(ValueError):
            VMType("bad", 0, 8, 1)

    def test_catalog_lookup_and_errors(self):
        catalog = VMTypeCatalog.main()
        assert catalog.get("4xlarge").cpu == 16
        assert "4xlarge" in catalog
        with pytest.raises(KeyError):
            catalog.get("9000xlarge")

    def test_multi_resource_catalog_has_memory_boosted_types(self):
        catalog = VMTypeCatalog.multi_resource()
        boosted = catalog.get("xlarge-mem8")
        assert boosted.memory == 8 * boosted.cpu  # 1:8 ratio as in §5.4

    def test_catalog_rejects_duplicates(self):
        with pytest.raises(ValueError):
            VMTypeCatalog((VMType("a", 2, 4, 1), VMType("a", 2, 4, 1)))


class TestPMTypes:
    def test_multi_resource_pm_types_match_section_5_4(self):
        by_name = {t.name: t for t in MULTI_RESOURCE_PM_TYPES}
        assert by_name["pm-88c-256g"].cpu == 88
        assert by_name["pm-88c-256g"].memory == 256
        assert by_name["pm-128c-364g"].cpu == 128
        assert by_name["pm-128c-364g"].memory == 364

    def test_capacity_split_across_numas(self):
        assert DEFAULT_PM_TYPE.cpu_per_numa == DEFAULT_PM_TYPE.cpu // 2

    def test_odd_capacity_rejected(self):
        with pytest.raises(ValueError):
            PMType("odd", cpu=7, memory=16)


class TestNumaNode:
    def test_allocation_and_release(self):
        numa = NumaNode(pm_id=0, numa_id=0, cpu_capacity=64, memory_capacity=256)
        numa.allocate(vm_id=1, cpu=16, memory=32)
        assert numa.free_cpu == 48
        assert numa.free_memory == 224
        assert numa.used_cpu == 16
        numa.release(vm_id=1, cpu=16, memory=32)
        assert numa.free_cpu == 64
        assert 1 not in numa.vm_ids

    def test_over_allocation_rejected(self):
        numa = NumaNode(pm_id=0, numa_id=0, cpu_capacity=16, memory_capacity=32)
        with pytest.raises(ValueError):
            numa.allocate(vm_id=1, cpu=32, memory=16)

    def test_double_allocation_of_same_vm_rejected(self):
        numa = NumaNode(pm_id=0, numa_id=0, cpu_capacity=64, memory_capacity=256)
        numa.allocate(vm_id=1, cpu=4, memory=8)
        with pytest.raises(ValueError):
            numa.allocate(vm_id=1, cpu=4, memory=8)

    def test_release_unknown_vm_rejected(self):
        numa = NumaNode(pm_id=0, numa_id=0, cpu_capacity=64, memory_capacity=256)
        with pytest.raises(ValueError):
            numa.release(vm_id=5, cpu=4, memory=8)

    def test_copy_is_independent(self):
        numa = NumaNode(pm_id=0, numa_id=0, cpu_capacity=64, memory_capacity=256)
        numa.allocate(vm_id=1, cpu=4, memory=8)
        clone = numa.copy()
        clone.release(vm_id=1, cpu=4, memory=8)
        assert numa.free_cpu == 60
        assert clone.free_cpu == 64


class TestPhysicalMachine:
    def test_pm_builds_two_numas(self):
        pm = PhysicalMachine(pm_id=3, pm_type=DEFAULT_PM_TYPE)
        assert len(pm.numas) == 2
        assert pm.cpu_capacity == DEFAULT_PM_TYPE.cpu
        assert pm.free_cpu == DEFAULT_PM_TYPE.cpu

    def test_utilization_and_vm_ids(self):
        pm = PhysicalMachine(pm_id=0, pm_type=PMType("t", cpu=32, memory=64))
        pm.numas[0].allocate(vm_id=7, cpu=8, memory=16)
        assert pm.cpu_utilization == pytest.approx(0.25)
        assert pm.vm_ids == {7}

    def test_copy_preserves_allocations(self):
        pm = PhysicalMachine(pm_id=0, pm_type=PMType("t", cpu=32, memory=64))
        pm.numas[1].allocate(vm_id=2, cpu=4, memory=8)
        clone = pm.copy()
        assert clone.numas[1].free_cpu == pm.numas[1].free_cpu
        clone.numas[1].release(vm_id=2, cpu=4, memory=8)
        assert pm.numas[1].free_cpu == 12


class TestVirtualMachine:
    def test_numa_ids_on_pm(self):
        vm = VirtualMachine(vm_id=0, vm_type=VMType("16xlarge", 64, 128, 2), pm_id=1, numa_id=BOTH_NUMAS)
        assert vm.numa_ids_on_pm() == (0, 1)
        single = VirtualMachine(vm_id=1, vm_type=VMType("xlarge", 4, 8, 1), pm_id=1, numa_id=1)
        assert single.numa_ids_on_pm() == (1,)

    def test_unplaced_vm_raises(self):
        vm = VirtualMachine(vm_id=0, vm_type=VMType("xlarge", 4, 8, 1))
        assert not vm.is_placed
        with pytest.raises(RuntimeError):
            vm.numa_ids_on_pm()
