"""Tests for constraint checking, migration plans and dynamic events."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterState,
    ConstraintChecker,
    ConstraintConfig,
    EventGenerator,
    LiveMigrationCostModel,
    Migration,
    MigrationPlan,
    PhysicalMachine,
    Placement,
    PMType,
    VirtualMachine,
    VMTypeCatalog,
    apply_events,
    apply_plan,
    assign_anti_affinity_groups,
    best_fit_placement,
    diurnal_rate_profile,
    sample_daily_changes,
)

CATALOG = VMTypeCatalog.main()


def make_cluster(num_pms=4, cpu=64, memory=256):
    pms = [PhysicalMachine(pm_id=i, pm_type=PMType(f"pm{cpu}", cpu=cpu, memory=memory)) for i in range(num_pms)]
    return ClusterState(pms=pms, vms=[])


def add_vm(state, vm_id, type_name, pm_id, numa_id, group=None):
    vm = VirtualMachine(vm_id=vm_id, vm_type=CATALOG.get(type_name), anti_affinity_group=group)
    state.add_vm(vm, Placement(pm_id=pm_id, numa_id=numa_id))
    return vm


@pytest.fixture
def small_state():
    state = make_cluster(num_pms=3)
    add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)
    add_vm(state, 1, "2xlarge", pm_id=0, numa_id=1)
    add_vm(state, 2, "xlarge", pm_id=1, numa_id=0)
    return state


class TestConstraintConfig:
    def test_invalid_mnl_rejected(self):
        with pytest.raises(ValueError):
            ConstraintConfig(migration_limit=0)

    def test_defaults(self):
        config = ConstraintConfig()
        assert config.migration_limit == 50
        assert config.honor_anti_affinity


class TestConstraintChecker:
    def test_feasible_migration(self, small_state):
        checker = ConstraintChecker()
        assert checker.migration_is_feasible(small_state, 0, 2)

    def test_source_pm_not_a_destination(self, small_state):
        checker = ConstraintChecker()
        assert not checker.migration_is_feasible(small_state, 0, 0)
        relaxed = ConstraintChecker(ConstraintConfig(allow_source_pm=True))
        assert relaxed.migration_is_feasible(small_state, 0, 0)

    def test_unknown_vm_or_pm(self, small_state):
        checker = ConstraintChecker()
        assert not checker.migration_is_feasible(small_state, 99, 1)
        assert not checker.migration_is_feasible(small_state, 0, 99)

    def test_capacity_violation_explained(self):
        state = make_cluster(num_pms=2, cpu=32, memory=64)
        add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)
        add_vm(state, 1, "4xlarge", pm_id=1, numa_id=0)
        add_vm(state, 2, "4xlarge", pm_id=1, numa_id=1)
        checker = ConstraintChecker()
        violations = checker.explain_migration(state, 0, 1)
        assert any(v.kind == "cpu_capacity" for v in violations)

    def test_memory_violation_explained(self):
        state = make_cluster(num_pms=2, cpu=256, memory=64)
        add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)   # needs 32 GB
        add_vm(state, 1, "2xlarge", pm_id=1, numa_id=0)   # uses 16 GB of 32 per NUMA
        add_vm(state, 2, "2xlarge", pm_id=1, numa_id=1)
        checker = ConstraintChecker()
        violations = checker.explain_migration(state, 0, 1)
        assert any(v.kind == "memory_capacity" for v in violations)
        relaxed = ConstraintChecker(ConstraintConfig(check_memory=False))
        assert relaxed.migration_is_feasible(state, 0, 1) is False  # capacity check still applies via state
        # explain under relaxed config should not flag memory
        assert not any(v.kind == "memory_capacity" for v in relaxed.explain_migration(state, 0, 1))

    def test_anti_affinity_violation(self, small_state):
        small_state.vms[0].anti_affinity_group = 5
        small_state.vms[2].anti_affinity_group = 5
        checker = ConstraintChecker()
        assert not checker.migration_is_feasible(small_state, 0, 1)
        violations = checker.explain_migration(small_state, 0, 1)
        assert any(v.kind == "anti_affinity" for v in violations)

    def test_destination_mask_matches_feasibility(self, small_state):
        checker = ConstraintChecker()
        mask = checker.destination_mask(small_state, 0)
        pm_ids = sorted(small_state.pms)
        for index, pm_id in enumerate(pm_ids):
            assert mask[index] == checker.migration_is_feasible(small_state, 0, pm_id)

    def test_movable_vm_mask(self, small_state):
        checker = ConstraintChecker()
        mask = checker.movable_vm_mask(small_state)
        assert mask.shape == (3,)
        assert mask.all()  # plenty of space everywhere

    def test_validate_plan_detects_mnl_violation(self, small_state):
        checker = ConstraintChecker(ConstraintConfig(migration_limit=1))
        plan = [(0, 1), (1, 2)]
        violations = checker.validate_plan(small_state, plan)
        assert any(v.kind == "mnl" for v in violations)

    def test_validate_plan_sees_freed_capacity(self):
        """A later step may rely on space freed by an earlier step."""
        state = make_cluster(num_pms=2, cpu=32, memory=128)
        add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)
        add_vm(state, 1, "4xlarge", pm_id=0, numa_id=1)
        add_vm(state, 2, "4xlarge", pm_id=1, numa_id=0)
        add_vm(state, 3, "4xlarge", pm_id=1, numa_id=1)
        checker = ConstraintChecker()
        # Move VM 0 off PM0 first is impossible (PM1 full) -> both orders fail,
        # but moving VM 2 to PM0 is impossible too; validate_plan should simply
        # report violations rather than crash.
        violations = checker.validate_plan(state, [(0, 1), (2, 0)], partial=True)
        assert violations


class TestAffinityGroupSynthesis:
    def test_groups_assigned(self):
        state = make_cluster(num_pms=4, cpu=256, memory=1024)
        for vm_id in range(12):
            add_vm(state, vm_id, "large", pm_id=vm_id % 4, numa_id=vm_id % 2)
        rng = np.random.default_rng(0)
        groups = assign_anti_affinity_groups(state, group_count=2, vms_per_group=3, rng=rng)
        assert len(groups) == 2
        assert all(len(members) == 3 for members in groups.values())
        assert state.affinity_ratio() > 0

    def test_too_many_groups_rejected(self):
        state = make_cluster()
        add_vm(state, 0, "large", 0, 0)
        with pytest.raises(ValueError):
            assign_anti_affinity_groups(state, 2, 2, np.random.default_rng(0))


class TestMigrationPlan:
    def test_plan_construction_helpers(self):
        plan = MigrationPlan.from_pairs([(1, 2), (3, 4)])
        assert len(plan) == 2
        assert plan.vm_ids() == [1, 3]
        assert plan.truncated(1).vm_ids() == [1]

    def test_apply_plan_reduces_fr(self, small_state):
        initial_fr = small_state.fragment_rate()
        plan = MigrationPlan([Migration(vm_id=2, dest_pm_id=0)])
        new_state, result = apply_plan(small_state, plan)
        assert result.num_applied == 1
        assert small_state.vms[2].pm_id == 1  # original untouched
        assert new_state.vms[2].pm_id == 0
        assert result.initial_fragment_rate == pytest.approx(initial_fr)

    def test_apply_plan_skips_stale_steps(self, small_state):
        plan = MigrationPlan([Migration(vm_id=99, dest_pm_id=0), Migration(vm_id=2, dest_pm_id=0)])
        _, result = apply_plan(small_state, plan, skip_infeasible=True)
        assert len(result.skipped) == 1
        assert len(result.applied) == 1

    def test_apply_plan_strict_raises(self, small_state):
        plan = MigrationPlan([Migration(vm_id=99, dest_pm_id=0)])
        with pytest.raises(ValueError):
            apply_plan(small_state, plan, skip_infeasible=False)

    def test_apply_plan_skips_infeasible_explicit_numa(self, small_state):
        # The PM can host VM 2 but the explicitly-requested NUMA cannot
        # (planners that unpack-then-repack can emit such stale targets).
        dest_pm = small_state.pms[0]
        dest_numa = dest_pm.numas[0]
        filler_cpu = dest_numa.free_cpu  # leave NUMA 0 with zero free CPU
        from repro.cluster import Placement, PMType, VirtualMachine, VMType

        if filler_cpu > 0:
            filler = VirtualMachine(
                vm_id=500,
                vm_type=VMType("filler", cpu=int(filler_cpu), memory=1, numa_count=1),
            )
            small_state.add_vm(filler, Placement(pm_id=0, numa_id=0))
        plan = MigrationPlan([Migration(vm_id=2, dest_pm_id=0, dest_numa_id=0)])
        new_state, result = apply_plan(small_state, plan, skip_infeasible=True)
        assert len(result.skipped) == 1
        assert new_state.vms[2].pm_id == small_state.vms[2].pm_id  # still on source
        with pytest.raises(ValueError):
            apply_plan(small_state, plan, skip_infeasible=False)

    def test_apply_plan_in_place(self, small_state):
        plan = MigrationPlan([Migration(vm_id=2, dest_pm_id=0)])
        new_state, _ = apply_plan(small_state, plan, in_place=True)
        assert new_state is small_state
        assert small_state.vms[2].pm_id == 0


class TestLiveMigrationCostModel:
    def test_migration_time_increases_with_memory(self):
        model = LiveMigrationCostModel()
        assert model.migration_seconds(128) > model.migration_seconds(8)

    def test_downtime_below_total_time(self):
        model = LiveMigrationCostModel()
        assert model.downtime_seconds(64) < model.migration_seconds(64)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            LiveMigrationCostModel().migration_seconds(0)

    def test_plan_cost_parallelism(self, small_state):
        model = LiveMigrationCostModel()
        plan = MigrationPlan([Migration(vm_id=0, dest_pm_id=2), Migration(vm_id=1, dest_pm_id=2)])
        serial = model.plan_cost(small_state, plan, parallelism=1)
        parallel = model.plan_cost(small_state, plan, parallelism=2)
        assert parallel["makespan_seconds"] <= serial["makespan_seconds"]
        assert serial["num_migrations"] == 2
        with pytest.raises(ValueError):
            model.plan_cost(small_state, plan, parallelism=0)


class TestEvents:
    def test_diurnal_profile_shape(self):
        profile = diurnal_rate_profile(peak_per_minute=80, trough_per_minute=6)
        assert profile.shape == (24 * 60,)
        assert profile.max() == pytest.approx(80, rel=1e-6)
        assert profile.min() == pytest.approx(6, rel=1e-6)

    def test_diurnal_profile_peak_must_exceed_trough(self):
        with pytest.raises(ValueError):
            diurnal_rate_profile(5, 10)

    def test_sample_daily_changes_counts(self):
        rng = np.random.default_rng(0)
        day = sample_daily_changes(rng)
        assert day["arrivals"].shape == (24 * 60,)
        np.testing.assert_array_equal(day["arrivals"] + day["exits"], day["total"])

    def test_event_generator_produces_sorted_mixed_events(self, small_state):
        generator = EventGenerator(changes_per_minute=120, rng=np.random.default_rng(1))
        events = generator.generate(horizon_s=60.0, state=small_state)
        assert events, "expected events at 2 changes per second over a minute"
        times = [e.time_s for e in events]
        assert times == sorted(times)
        kinds = {e.kind for e in events}
        assert kinds <= {"arrival", "exit"}

    def test_apply_events_updates_state(self, small_state):
        generator = EventGenerator(changes_per_minute=240, rng=np.random.default_rng(2))
        events = generator.generate(horizon_s=120.0, state=small_state)
        before_vm_count = small_state.num_vms
        stats = apply_events(small_state, events, until_s=120.0, rng=np.random.default_rng(3))
        assert stats["arrivals"] + stats["exits"] + stats["failed_arrivals"] > 0
        assert small_state.num_vms == before_vm_count + stats["arrivals"] - stats["exits"]

    def test_best_fit_placement_prefers_fragment_reduction(self):
        state = make_cluster(num_pms=2, cpu=64, memory=256)
        # PM0 NUMA0 has exactly 16 free after hosting a 4xlarge; PM1 empty.
        add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)
        vm = VirtualMachine(vm_id=10, vm_type=CATALOG.get("4xlarge"))
        placement = best_fit_placement(state, vm)
        assert placement is not None
        assert placement.pm_id == 0 and placement.numa_id == 0

    def test_best_fit_placement_none_when_full(self):
        state = make_cluster(num_pms=1, cpu=32, memory=64)
        add_vm(state, 0, "4xlarge", pm_id=0, numa_id=0)
        add_vm(state, 1, "4xlarge", pm_id=0, numa_id=1)
        vm = VirtualMachine(vm_id=10, vm_type=CATALOG.get("4xlarge"))
        assert best_fit_placement(state, vm) is None
