"""Parity tests for the structure-of-arrays (SoA) hot paths.

The vectorized masks, featurization, fragment metrics and ``copy`` must be
bit-for-bit identical to the legacy loop implementations (kept as
``*_reference`` methods) on randomized clusters, including 2-NUMA VMs and
anti-affinity edge cases, and the incrementally-synced arrays must always
match a fresh rebuild after arbitrary mutation sequences.
"""

import numpy as np
import pytest

from repro.cluster import (
    BOTH_NUMAS,
    ClusterArrays,
    ClusterState,
    ConstraintChecker,
    ConstraintConfig,
    Placement,
    VirtualMachine,
    assign_anti_affinity_groups,
    cluster_cpu_fragment,
    fragment_rate,
    memory_fragment_rate,
)
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env.observation import ObservationBuilder


def random_state(seed: int, num_pms: int = 20, groups: int = 3) -> ClusterState:
    spec = ClusterSpec(
        name=f"parity-{seed}",
        num_pms=num_pms,
        target_utilization=0.72,
        best_fit_fraction=0.3,
    )
    state = SnapshotGenerator(spec, seed=seed).generate()
    if groups:
        rng = np.random.default_rng(seed + 1)
        vms_per_group = 3
        if groups * vms_per_group <= state.num_vms:
            assign_anti_affinity_groups(state, groups, vms_per_group, rng)
    return state


CONFIGS = [
    ConstraintConfig(),
    ConstraintConfig(allow_source_pm=True),
    ConstraintConfig(honor_anti_affinity=False),
]


class TestMaskParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_destination_and_movable_masks(self, seed, config_index):
        state = random_state(seed)
        checker = ConstraintChecker(CONFIGS[config_index])
        np.testing.assert_array_equal(
            checker.movable_vm_mask(state), checker.movable_vm_mask_reference(state)
        )
        matrix = checker.feasibility_matrix(state)
        for row, vm_id in enumerate(state.sorted_vm_ids()):
            reference = checker.destination_mask_reference(state, vm_id)
            np.testing.assert_array_equal(checker.destination_mask(state, vm_id), reference)
            np.testing.assert_array_equal(matrix[row], reference)

    def test_custom_pm_id_order_and_unknown_ids(self):
        state = random_state(4)
        checker = ConstraintChecker()
        vm_id = state.placed_vm_ids()[0]
        pm_ids = list(reversed(state.sorted_pm_ids())) + [10_000]
        np.testing.assert_array_equal(
            checker.destination_mask(state, vm_id, pm_ids),
            checker.destination_mask_reference(state, vm_id, pm_ids),
        )

    def test_unplaced_and_missing_vm(self):
        state = random_state(5, groups=0)
        checker = ConstraintChecker()
        unplaced_id = max(state.vms) + 1
        state.add_vm(VirtualMachine(vm_id=unplaced_id, vm_type=next(iter(state.vms.values())).vm_type))
        assert not checker.destination_mask(state, unplaced_id).any()
        assert not checker.destination_mask(state, 999_999).any()
        np.testing.assert_array_equal(
            checker.movable_vm_mask(state), checker.movable_vm_mask_reference(state)
        )

    def test_vm_id_subset(self):
        state = random_state(6)
        checker = ConstraintChecker()
        subset = state.sorted_vm_ids()[::3][::-1]
        np.testing.assert_array_equal(
            checker.movable_vm_mask(state, subset),
            checker.movable_vm_mask_reference(state, subset),
        )

    def test_group_assigned_after_arrays_built(self):
        """Anti-affinity groups set *after* the SoA view exists must be honored."""
        state = random_state(7, groups=0)
        checker = ConstraintChecker()
        checker.movable_vm_mask(state)  # builds the SoA view
        placed = state.placed_vm_ids()
        state.vms[placed[0]].anti_affinity_group = 42
        state.vms[placed[1]].anti_affinity_group = 42
        for vm_id in (placed[0], placed[1]):
            np.testing.assert_array_equal(
                checker.destination_mask(state, vm_id),
                checker.destination_mask_reference(state, vm_id),
            )
        np.testing.assert_array_equal(
            checker.movable_vm_mask(state), checker.movable_vm_mask_reference(state)
        )


class TestFeatureParity:
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_observation_matches_reference(self, seed):
        state = random_state(seed)
        builder = ObservationBuilder(ConstraintChecker())
        fast = builder.build(state, migrations_left=12)
        reference = builder.build_reference(state, migrations_left=12)
        np.testing.assert_array_equal(fast.pm_features, reference.pm_features)
        np.testing.assert_array_equal(fast.vm_features, reference.vm_features)
        np.testing.assert_array_equal(fast.vm_source_pm, reference.vm_source_pm)
        np.testing.assert_array_equal(fast.vm_mask, reference.vm_mask)
        assert fast.vm_ids == reference.vm_ids
        assert fast.pm_ids == reference.pm_ids
        np.testing.assert_array_equal(fast.vm_id_array, np.array(fast.vm_ids))
        np.testing.assert_array_equal(fast.pm_id_array, np.array(fast.pm_ids))


class TestMetricParity:
    @pytest.mark.parametrize("seed", [0, 9])
    def test_fragment_metrics_match_object_reductions(self, seed):
        state = random_state(seed)
        pms = list(state.pms.values())
        assert state.fragment_rate() == fragment_rate(pms, state.fragment_cores)
        assert state.fragment_rate(64) == fragment_rate(pms, 64)
        assert state.total_fragment() == cluster_cpu_fragment(pms, state.fragment_cores)
        assert state.memory_fragment_rate() == memory_fragment_rate(pms, 64.0)
        total = sum(pm.cpu_capacity for pm in pms)
        free = sum(pm.free_cpu for pm in pms)
        assert state.cpu_utilization() == pytest.approx(1.0 - free / total)


class TestIncrementalSync:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_arrays_track_random_mutations(self, seed):
        state = random_state(seed)
        checker = ConstraintChecker()
        rng = np.random.default_rng(seed)
        state.arrays().assert_in_sync(state)
        vm_type = next(iter(state.vms.values())).vm_type
        next_id = max(state.vms) + 1
        for step in range(60):
            movable = checker.movable_vm_mask(state)
            choice = rng.integers(4)
            if choice == 0 and movable.any():
                vm_id = state.sorted_vm_ids()[int(rng.choice(np.nonzero(movable)[0]))]
                dest = state.sorted_pm_ids()[
                    int(rng.choice(np.nonzero(checker.destination_mask(state, vm_id))[0]))
                ]
                state.migrate_vm(vm_id, dest)
            elif choice == 1:
                placed = state.placed_vm_ids()
                if placed:
                    state.remove_vm(int(rng.choice(placed)))
            elif choice == 2:
                state.add_vm(VirtualMachine(vm_id=next_id, vm_type=vm_type))
                next_id += 1
            else:
                unplaced = [v for v in state.sorted_vm_ids() if not state.vms[v].is_placed]
                if unplaced:
                    state.remove_vm_from_cluster(int(rng.choice(unplaced)))
            state.arrays().assert_in_sync(state)
            np.testing.assert_array_equal(
                checker.movable_vm_mask(state), checker.movable_vm_mask_reference(state)
            )

    def test_double_numa_place_remove_cycle(self):
        state = random_state(2, groups=0)
        doubles = [v.vm_id for v in state.vms.values() if v.numa_count == 2 and v.is_placed]
        if not doubles:
            pytest.skip("generator produced no placed 2-NUMA VM for this seed")
        vm_id = doubles[0]
        state.arrays()
        placement = state.remove_vm(vm_id)
        state.arrays().assert_in_sync(state)
        assert placement.numa_id == BOTH_NUMAS
        state.place_vm(vm_id, placement, honor_affinity=False)
        state.arrays().assert_in_sync(state)


class TestCopyParity:
    def test_copy_is_deep_and_identical(self):
        state = random_state(3)
        state.arrays()  # ensure the SoA view is carried over
        clone = state.copy()
        assert clone.to_dict() == state.to_dict()
        clone.arrays().assert_in_sync(clone)
        checker = ConstraintChecker()
        np.testing.assert_array_equal(
            checker.movable_vm_mask(clone), checker.movable_vm_mask_reference(clone)
        )
        # Mutating the clone leaves the original untouched (and vice versa).
        vm_id = clone.placed_vm_ids()[0]
        mask = checker.destination_mask(clone, vm_id)
        if mask.any():
            dest = clone.sorted_pm_ids()[int(np.nonzero(mask)[0][0])]
            clone.migrate_vm(vm_id, dest)
            assert state.vms[vm_id].pm_id != clone.vms[vm_id].pm_id
            state.arrays().assert_in_sync(state)
            clone.arrays().assert_in_sync(clone)

    def test_copy_without_arrays_built(self):
        state = random_state(4)
        clone = state.copy()
        assert clone.to_dict() == state.to_dict()
        clone.arrays().assert_in_sync(clone)


class TestRewardParity:
    def test_episode_rewards_match_reference_masks(self):
        """A greedy rollout picks identical actions and rewards under both paths."""
        from repro.env import VMRescheduleEnv

        state = random_state(1)
        env = VMRescheduleEnv(state, constraint_config=ConstraintConfig(migration_limit=6))
        env.reset()
        rng = np.random.default_rng(0)
        total = 0.0
        for _ in range(6):
            vm_mask = env.vm_action_mask()
            np.testing.assert_array_equal(
                vm_mask, env.checker.movable_vm_mask_reference(env.state)
            )
            if not vm_mask.any():
                break
            vm_index = int(rng.choice(np.nonzero(vm_mask)[0]))
            pm_mask = env.pm_action_mask(vm_index)
            np.testing.assert_array_equal(
                pm_mask,
                env.checker.destination_mask_reference(
                    env.state, env.state.sorted_vm_ids()[vm_index]
                ),
            )
            if not pm_mask.any():
                continue
            pm_index = int(rng.choice(np.nonzero(pm_mask)[0]))
            _, reward, done, _ = env.step((vm_index, pm_index))
            total += reward
            if done:
                break
        assert np.isfinite(total)


def test_cluster_arrays_build_matches_state():
    state = random_state(11)
    soa = ClusterArrays.build(state)
    assert soa.num_pms == state.num_pms and soa.num_vms == state.num_vms
    for row, pm_id in enumerate(state.sorted_pm_ids()):
        pm = state.pms[pm_id]
        for numa in pm.numas:
            assert soa.numa_free_cpu[row, numa.numa_id] == numa.free_cpu
            assert soa.numa_free_mem[row, numa.numa_id] == numa.free_memory
