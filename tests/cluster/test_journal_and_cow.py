"""SoA mutation journal (dirty-set tracking) + copy-on-write ClusterState.copy."""

import numpy as np
import pytest

from repro.cluster import ClusterState, ConstraintChecker
from repro.cluster.soa import JOURNAL_CAPACITY
from repro.datasets import ClusterSpec, SnapshotGenerator


def _state(num_pms=10, seed=0):
    spec = ClusterSpec(
        name="journal", num_pms=num_pms, target_utilization=0.8, best_fit_fraction=0.3
    )
    return SnapshotGenerator(spec, seed=seed).generate()


def _first_move(state):
    checker = ConstraintChecker()
    for vm_id in state.placed_vm_ids():
        mask = checker.destination_mask(state, vm_id)
        if mask.any():
            return vm_id, int(state.arrays().pm_ids[np.flatnonzero(mask)[0]])
    pytest.skip("no feasible migration in generated state")


class TestMutationJournal:
    def test_migration_records_both_endpoints(self):
        state = _state()
        soa = state.arrays()
        version = soa.version
        vm_id, dest_pm = _first_move(state)
        source_row = int(soa.vm_pm[soa.vm_row[vm_id]])
        state.migrate_vm(vm_id, dest_pm)
        vm_rows, pm_rows = soa.dirty_since(version)
        assert vm_rows.tolist() == [soa.vm_row[vm_id]]
        assert set(pm_rows.tolist()) == {source_row, soa.pm_row[dest_pm]}

    def test_current_version_is_empty(self):
        state = _state()
        soa = state.arrays()
        vm_rows, pm_rows = soa.dirty_since(soa.version)
        assert vm_rows.size == 0 and pm_rows.size == 0

    def test_future_and_stale_versions_return_none(self):
        state = _state()
        soa = state.arrays()
        assert soa.dirty_since(soa.version + 1) is None

    def test_journal_trims_and_reports_stale(self):
        state = _state()
        soa = state.arrays()
        vm_id, dest_pm = _first_move(state)
        source_pm = int(state.vms[vm_id].pm_id)
        version = soa.version
        for _ in range(JOURNAL_CAPACITY // 2 + 2):
            state.migrate_vm(vm_id, dest_pm)
            state.migrate_vm(vm_id, source_pm)
        assert soa.dirty_since(version) is None  # fell off the journal
        recent = soa.version - 2
        dirty = soa.dirty_since(recent)
        assert dirty is not None and dirty[0].size == 1

    def test_copy_journals_independently(self):
        state = _state()
        soa = state.arrays()
        version = soa.version
        clone = state.copy()
        vm_id, dest_pm = _first_move(clone)
        clone.migrate_vm(vm_id, dest_pm)
        # Original's view saw nothing; the clone's own view journalled it.
        vm_rows, pm_rows = soa.dirty_since(version)
        assert vm_rows.size == 0
        clone_dirty = clone.arrays().dirty_since(version)
        assert clone_dirty is not None and clone_dirty[0].size == 1


class TestCopyOnWrite:
    def test_clone_mutation_leaves_original_intact(self):
        state = _state()
        clone = state.copy()
        vm_id, dest_pm = _first_move(clone)
        before = state.vms[vm_id].pm_id
        clone.migrate_vm(vm_id, dest_pm)
        assert state.vms[vm_id].pm_id == before
        assert clone.vms[vm_id].pm_id == dest_pm
        state.arrays().assert_in_sync(state)
        clone.arrays().assert_in_sync(clone)

    def test_original_mutation_leaves_clone_intact(self):
        state = _state(seed=1)
        clone = state.copy()
        vm_id, dest_pm = _first_move(state)
        before = clone.vms[vm_id].pm_id
        state.migrate_vm(vm_id, dest_pm)
        assert clone.vms[vm_id].pm_id == before
        clone.arrays().assert_in_sync(clone)
        state.arrays().assert_in_sync(state)

    def test_chained_copies(self):
        state = _state(seed=2)
        first = state.copy()
        vm_id, dest_pm = _first_move(first)
        first.migrate_vm(vm_id, dest_pm)
        second = first.copy()
        source_pm = int(second.vms[vm_id].pm_id)
        # Migrate back in the grandchild; parent and grandparent unaffected.
        back_to = int(state.vms[vm_id].pm_id)
        if second.can_host(vm_id, back_to):
            second.migrate_vm(vm_id, back_to)
            assert first.vms[vm_id].pm_id == source_pm
        for s in (state, first, second):
            s.arrays().assert_in_sync(s)

    def test_set_anti_affinity_group_is_cow_safe(self):
        state = _state(seed=3)
        clone = state.copy()
        vm_id = state.placed_vm_ids()[0]
        clone.set_anti_affinity_group(vm_id, 7)
        assert state.vms[vm_id].anti_affinity_group is None
        assert clone.vms[vm_id].anti_affinity_group == 7

    def test_round_trip_survives_cow(self):
        state = _state(seed=4)
        clone = state.copy()
        vm_id, dest_pm = _first_move(clone)
        clone.migrate_vm(vm_id, dest_pm)
        restored = ClusterState.from_dict(clone.to_dict())
        assert restored.vms[vm_id].pm_id == dest_pm
        assert restored.fragment_rate() == pytest.approx(clone.fragment_rate())
