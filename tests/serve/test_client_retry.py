"""Tests for the retrying HTTP client against a scripted stub server.

The stub answers each request from a fixed script of (status, headers, body)
entries — or drops the connection — so every retry decision the client makes
is asserted against known server behavior, with an injected ``sleep``
recording the backoff schedule instead of waiting it out.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve import (
    PlanError,
    PlanRequest,
    PlanResponse,
    PlanningClient,
    RetryPolicy,
)


def make_request():
    # The stub never parses the snapshot — an empty dict keeps bodies tiny.
    return PlanRequest(
        snapshot={}, planner="ha", migration_limit=1, request_id="req-1"
    )


def ok_body(request_id="req-1"):
    return json.dumps(
        PlanResponse(request_id=request_id, planner="HA").to_dict()
    ).encode()


def error_body(code, message, retry_after_s=None, request_id="req-1"):
    return json.dumps(
        PlanError(request_id, code, message, retry_after_s=retry_after_s).to_dict()
    ).encode()


class _ScriptedHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        with self.server.lock:
            index = self.server.hits
            self.server.hits += 1
        script = self.server.script
        entry = script[min(index, len(script) - 1)]
        if entry == "drop":
            # Slam the connection shut before any response bytes: the client
            # sees a reset/EOF, which must be treated as transient.
            self.connection.close()
            return
        status, headers, body = entry
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        pass


@pytest.fixture()
def stub_server():
    servers = []

    def _start(script):
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        httpd.script = script
        httpd.hits = 0
        httpd.lock = threading.Lock()
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        servers.append(httpd)
        host, port = httpd.server_address[:2]
        return httpd, f"http://{host}:{port}"

    yield _start
    for httpd in servers:
        httpd.shutdown()
        httpd.server_close()


def make_client(url, max_retries=3, sleeps=None):
    return PlanningClient(
        url,
        retry=RetryPolicy(max_retries=max_retries, backoff_s=0.01),
        timeout_s=30.0,
        sleep=sleeps.append if sleeps is not None else (lambda s: None),
    )


class TestRetrySchedule:
    def test_503_retried_until_success(self, stub_server):
        httpd, url = stub_server(
            [
                (503, {}, error_body("service_unavailable", "shed")),
                (503, {}, error_body("service_unavailable", "shed")),
                (200, {}, ok_body()),
            ]
        )
        sleeps = []
        reply = make_client(url, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanResponse)
        assert httpd.hits == 3
        assert len(sleeps) == 2
        assert all(delay > 0.0 for delay in sleeps)

    def test_retry_after_header_is_the_backoff_floor(self, stub_server):
        httpd, url = stub_server(
            [
                (503, {"Retry-After": "2"}, error_body("service_unavailable", "shed")),
                (200, {}, ok_body()),
            ]
        )
        sleeps = []
        reply = make_client(url, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanResponse)
        assert len(sleeps) == 1
        assert sleeps[0] >= 2.0

    def test_body_retry_after_honored_without_header(self, stub_server):
        httpd, url = stub_server(
            [
                (503, {}, error_body("service_unavailable", "shed", retry_after_s=1.5)),
                (200, {}, ok_body()),
            ]
        )
        sleeps = []
        reply = make_client(url, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanResponse)
        assert sleeps[0] >= 1.5

    def test_budget_exhaustion_returns_last_error(self, stub_server):
        httpd, url = stub_server(
            [(503, {}, error_body("service_unavailable", "still shedding"))]
        )
        sleeps = []
        reply = make_client(url, max_retries=2, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanError)
        assert reply.code == "service_unavailable"
        assert httpd.hits == 3  # initial attempt + 2 retries, then give up
        assert len(sleeps) == 2


class TestTerminalErrors:
    @pytest.mark.parametrize(
        "status,code",
        [
            (400, "invalid_request"),
            (404, "unknown_planner"),
            (408, "deadline_exceeded"),
            (500, "internal_error"),
        ],
    )
    def test_non_retryable_statuses_get_one_attempt(self, stub_server, status, code):
        httpd, url = stub_server([(status, {}, error_body(code, "terminal"))])
        sleeps = []
        reply = make_client(url, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanError)
        assert reply.code == code
        assert httpd.hits == 1, "terminal errors must never be retried"
        assert sleeps == []

    def test_unreadable_503_body_still_retries(self, stub_server):
        httpd, url = stub_server(
            [(503, {}, b"<html>gateway</html>"), (200, {}, ok_body())]
        )
        reply = make_client(url).plan(make_request())
        assert isinstance(reply, PlanResponse)
        assert httpd.hits == 2


class TestConnectionFailures:
    def test_dropped_connection_is_retried(self, stub_server):
        httpd, url = stub_server(["drop", (200, {}, ok_body())])
        sleeps = []
        reply = make_client(url, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanResponse)
        assert httpd.hits == 2
        assert len(sleeps) == 1

    def test_connection_refused_returns_stable_error(self, stub_server):
        # Bind a port, then close the server so nothing is listening there.
        httpd, url = stub_server([(200, {}, ok_body())])
        httpd.shutdown()
        httpd.server_close()
        sleeps = []
        reply = make_client(url, max_retries=2, sleeps=sleeps).plan(make_request())
        assert isinstance(reply, PlanError)
        assert reply.code == "service_unavailable"
        assert "connection" in reply.message.lower()
        assert len(sleeps) == 2


class FakeTime:
    """A clock+sleep pair: sleeping advances the clock, nothing waits."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, delay):
        self.sleeps.append(delay)
        self.now += delay


def make_budgeted_client(url, fake, max_retries=8, max_elapsed_s=None):
    return PlanningClient(
        url,
        retry=RetryPolicy(max_retries=max_retries, backoff_s=0.01),
        timeout_s=30.0,
        sleep=fake.sleep,
        clock=fake.clock,
        max_elapsed_s=max_elapsed_s,
    )


class TestElapsedBudget:
    def test_max_elapsed_s_stops_retrying_before_count_budget(self, stub_server):
        # The server sheds forever with a 1s Retry-After floor; an elapsed
        # budget of 2.5s admits exactly two backoffs (at t=1 and t=2) — the
        # third would land at t=3, past the budget, so the client gives up
        # with retries left on the count budget.
        httpd, url = stub_server(
            [(503, {"Retry-After": "1"}, error_body("service_unavailable", "shed"))]
        )
        fake = FakeTime()
        reply = make_budgeted_client(url, fake, max_elapsed_s=2.5).plan(
            make_request()
        )
        assert isinstance(reply, PlanError)
        assert reply.code == "service_unavailable"
        assert httpd.hits == 3
        assert len(fake.sleeps) == 2

    def test_deadline_ms_is_the_default_budget(self, stub_server):
        # Without an explicit max_elapsed_s, a request's own deadline_ms caps
        # the retry loop: waiting past the caller's deadline to deliver an
        # answer it can no longer use is worse than giving up.
        httpd, url = stub_server(
            [(503, {"Retry-After": "1"}, error_body("service_unavailable", "shed"))]
        )
        request = PlanRequest(
            snapshot={},
            planner="ha",
            migration_limit=1,
            request_id="req-1",
            deadline_ms=1500.0,
        )
        fake = FakeTime()
        reply = make_budgeted_client(url, fake).plan(request)
        assert isinstance(reply, PlanError)
        assert httpd.hits == 2  # initial + the one retry that fits in 1.5s
        assert len(fake.sleeps) == 1

    def test_explicit_budget_overrides_deadline(self, stub_server):
        httpd, url = stub_server(
            [
                (503, {"Retry-After": "1"}, error_body("service_unavailable", "shed")),
                (503, {"Retry-After": "1"}, error_body("service_unavailable", "shed")),
                (200, {}, ok_body()),
            ]
        )
        request = PlanRequest(
            snapshot={},
            planner="ha",
            migration_limit=1,
            request_id="req-1",
            deadline_ms=100.0,  # would forbid any retry on its own
        )
        fake = FakeTime()
        reply = make_budgeted_client(url, fake, max_elapsed_s=10.0).plan(request)
        assert isinstance(reply, PlanResponse)
        assert httpd.hits == 3

    def test_no_budget_keeps_count_only_semantics(self, stub_server):
        # No deadline, no max_elapsed_s: behavior is exactly the old
        # count-bounded loop — however long Retry-After floors stretch it.
        httpd, url = stub_server(
            [(503, {"Retry-After": "60"}, error_body("service_unavailable", "shed"))]
        )
        fake = FakeTime()
        reply = make_budgeted_client(url, fake, max_retries=2).plan(make_request())
        assert isinstance(reply, PlanError)
        assert httpd.hits == 3
        assert fake.sleeps == [60.0, 60.0]


class TestProbes:
    def test_healthz_and_state_helpers(self):
        import urllib.error

        client = PlanningClient("http://127.0.0.1:9")  # discard port: refused
        with pytest.raises((urllib.error.URLError, OSError)):
            client.healthz()  # probes do NOT retry or mask failures
