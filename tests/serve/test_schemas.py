"""Tests for the versioned PlanRequest / PlanResponse / PlanError schemas."""

import json

import pytest

from repro.cluster import MigrationPlan, Migration
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    SCHEMA_VERSION,
    PlanError,
    PlanRequest,
    PlanResponse,
    SchemaError,
    response_from_dict,
)


def small_state(num_pms=5, seed=0):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


class TestPlanRequest:
    def test_json_round_trip(self):
        state = small_state()
        request = PlanRequest.from_state(
            state, planner="vmr2l", migration_limit=5, objective="fragment_rate",
            greedy=False, seed=7, deadline_ms=250.0,
        )
        restored = PlanRequest.from_json(request.to_json())
        assert restored.to_dict() == request.to_dict()
        restored.validate()

    def test_snapshot_materializes_identical_state(self):
        state = small_state()
        request = PlanRequest.from_state(state)
        rebuilt = request.state()
        assert rebuilt.to_dict() == state.to_dict()
        assert rebuilt.fragment_rate() == pytest.approx(state.fragment_rate())

    def test_request_id_assigned(self):
        request = PlanRequest.from_state(small_state())
        assert request.request_id
        another = PlanRequest.from_state(small_state())
        assert another.request_id != request.request_id

    def test_validate_rejects_negative_limit(self):
        request = PlanRequest.from_state(small_state(), migration_limit=-1)
        with pytest.raises(SchemaError):
            request.validate()

    def test_validate_rejects_unknown_objective(self):
        request = PlanRequest.from_state(small_state(), objective="profit")
        with pytest.raises(SchemaError) as excinfo:
            request.validate()
        assert excinfo.value.code == "unknown_objective"

    def test_validate_rejects_future_version(self):
        request = PlanRequest.from_state(small_state())
        request.version = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError):
            request.validate()

    def test_from_dict_rejects_unknown_fields(self):
        payload = PlanRequest.from_state(small_state()).to_dict()
        payload["frobnicate"] = True
        with pytest.raises(SchemaError):
            PlanRequest.from_dict(payload)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SchemaError):
            PlanRequest.from_json("{not json")

    def test_from_dict_coerces_numeric_deadline_strings(self):
        payload = PlanRequest.from_state(small_state()).to_dict()
        payload["deadline_ms"] = "100"
        request = PlanRequest.from_dict(payload)
        assert request.deadline_ms == pytest.approx(100.0)
        request.validate()

    def test_from_dict_rejects_non_numeric_deadline(self):
        payload = PlanRequest.from_state(small_state()).to_dict()
        payload["deadline_ms"] = "soon"
        with pytest.raises(SchemaError):
            PlanRequest.from_dict(payload)

    def test_validate_rejects_non_numeric_deadline(self):
        request = PlanRequest.from_state(small_state())
        request.deadline_ms = "100"  # constructed directly, bypassing from_dict
        with pytest.raises(SchemaError):
            request.validate()

    def test_bad_snapshot_surfaces_as_schema_error(self):
        request = PlanRequest(snapshot={"pms": [], "vms": []})
        with pytest.raises(SchemaError):
            request.state()


class TestPlanResponse:
    def test_round_trip_and_plan_reconstruction(self):
        plan = MigrationPlan([Migration(3, 1, 0), Migration(5, 2, None)])
        response = PlanResponse(
            request_id="abc",
            planner="HA",
            migrations=PlanResponse.migrations_payload(plan),
            initial_objective=0.5,
            final_objective=0.25,
            num_applied=2,
            metrics={"latency_ms": 1.0, "batch_size": 1},
        )
        payload = json.loads(response.to_json())
        assert payload["ok"] is True
        assert payload["num_migrations"] == 2
        restored = response_from_dict(payload)
        assert isinstance(restored, PlanResponse)
        rebuilt = restored.plan()
        assert [m.as_tuple() for m in rebuilt] == [(3, 1), (5, 2)]
        assert rebuilt.migrations[0].dest_numa_id == 0
        assert rebuilt.migrations[1].dest_numa_id is None
        assert restored.objective_reduction == pytest.approx(0.25)

    def test_error_round_trip(self):
        error = PlanError(request_id="abc", code="unknown_planner", message="nope")
        payload = json.loads(error.to_json())
        assert payload["ok"] is False
        restored = response_from_dict(payload)
        assert isinstance(restored, PlanError)
        assert restored.code == "unknown_planner"
