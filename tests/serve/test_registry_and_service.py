"""Tests for the Planner registry and the micro-batching ReschedulingService."""

import pytest

from repro.cluster import apply_plan
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    PlanError,
    PlanRequest,
    PlanResponse,
    ReschedulingService,
    ServiceConfig,
    build_default_registry,
)


def small_state(num_pms=5, seed=0):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


@pytest.fixture(scope="module")
def registry():
    return build_default_registry(seed=0)


@pytest.fixture(scope="module")
def service(registry):
    return ReschedulingService(registry, ServiceConfig(max_batch_size=4))


class TestRegistry:
    def test_all_algorithms_registered(self, registry):
        assert registry.names() == [
            "decima", "ha", "mcts", "mip", "neuplan", "pop", "random", "vbpp", "vmr2l",
        ]

    def test_aliases_and_case_insensitivity(self, registry):
        assert registry.get("rl") is registry.get("vmr2l")
        assert registry.get("HA") is registry.get("ha")
        assert "agent" in registry

    def test_unknown_planner_raises_keyerror(self, registry):
        with pytest.raises(KeyError):
            registry.get("quantum")

    def test_describe_lists_capabilities(self, registry):
        described = {entry["key"]: entry for entry in registry.describe()}
        assert "batch" in described["vmr2l"]["capabilities"]
        assert described["ha"]["name"] == "HA"

    def test_fast_only_registry_drops_slow_planners(self):
        fast = build_default_registry(include_slow=False, seed=0)
        assert fast.names() == ["ha", "random", "vbpp", "vmr2l"]


class TestServiceSingleRequests:
    @pytest.mark.parametrize(
        "key", ["ha", "vbpp", "random", "mip", "pop", "mcts", "decima", "neuplan", "vmr2l"]
    )
    def test_every_planner_returns_schema_valid_response(self, service, key):
        state = small_state()
        reply = service.handle(
            PlanRequest.from_state(state, planner=key, migration_limit=3)
        )
        assert isinstance(reply, PlanResponse), getattr(reply, "message", None)
        payload = reply.to_dict()
        assert payload["ok"] is True
        assert 0.0 <= payload["final_objective"] <= 1.0
        assert payload["num_migrations"] <= 3
        assert payload["metrics"]["latency_ms"] >= 0.0
        # The returned plan must actually apply to the request snapshot.
        final_state, application = apply_plan(state.copy(), reply.plan(), skip_infeasible=True)
        assert application.num_applied == payload["num_applied"]

    def test_unknown_planner_is_structured_error(self, service):
        reply = service.handle(PlanRequest.from_state(small_state(), planner="quantum"))
        assert isinstance(reply, PlanError)
        assert reply.code == "unknown_planner"

    def test_invalid_request_is_structured_error(self, service):
        reply = service.handle(
            PlanRequest.from_state(small_state(), migration_limit=-2)
        )
        assert isinstance(reply, PlanError)
        assert reply.code == "invalid_request"

    def test_zero_limit_noop_request(self, service):
        reply = service.handle(
            PlanRequest.from_state(small_state(), planner="ha", migration_limit=0)
        )
        assert isinstance(reply, PlanResponse)
        assert reply.num_migrations == 0
        assert reply.initial_objective == pytest.approx(reply.final_objective)

    def test_objective_routing(self, service):
        reply = service.handle(
            PlanRequest.from_state(
                small_state(), planner="ha", migration_limit=3,
                objective="mixed_fr16_fr64", objective_params={"weight": 0.5},
            )
        )
        assert isinstance(reply, PlanResponse)

    def test_bad_objective_params_rejected(self, service):
        reply = service.handle(
            PlanRequest.from_state(
                small_state(), planner="ha",
                objective="mixed_fr16_fr64", objective_params={"weight": 3.0},
            )
        )
        assert isinstance(reply, PlanError)
        assert reply.code == "invalid_request"


class TestMicroBatching:
    def test_batched_rl_plans_match_sequential(self, registry):
        states = [small_state(seed=s) for s in range(4)]
        requests = [
            PlanRequest.from_state(state, planner="vmr2l", migration_limit=4)
            for state in states
        ]
        batched_service = ReschedulingService(registry, ServiceConfig(max_batch_size=4))
        sequential_service = ReschedulingService(
            registry, ServiceConfig(micro_batching=False)
        )
        batched = batched_service.handle_many(requests)
        sequential = [
            sequential_service.handle(
                PlanRequest.from_state(state, planner="vmr2l", migration_limit=4)
            )
            for state in states
        ]
        for fused, solo in zip(batched, sequential):
            assert isinstance(fused, PlanResponse)
            assert fused.migrations == solo.migrations
            assert fused.final_objective == pytest.approx(solo.final_objective)
            assert fused.metrics["batch_size"] == 4
            assert solo.metrics["batch_size"] == 1

    def test_mixed_planner_batch_keeps_request_order(self, service):
        states = [small_state(seed=s) for s in range(3)]
        requests = [
            PlanRequest.from_state(states[0], planner="ha", migration_limit=2),
            PlanRequest.from_state(states[1], planner="vmr2l", migration_limit=2),
            PlanRequest.from_state(states[2], planner="quantum"),
        ]
        replies = service.handle_many(requests)
        assert replies[0].planner == "HA"
        assert replies[1].planner == "VMR2L"
        assert isinstance(replies[2], PlanError)
        assert [r.request_id for r in replies] == [r.request_id for r in requests]

    def test_batch_respects_max_batch_size(self, registry):
        states = [small_state(seed=s) for s in range(5)]
        service = ReschedulingService(registry, ServiceConfig(max_batch_size=2))
        replies = service.handle_many(
            [PlanRequest.from_state(s, planner="vmr2l", migration_limit=2) for s in states]
        )
        assert all(reply.metrics["batch_size"] <= 2 for reply in replies)

    def test_sampled_requests_are_not_fused(self, service):
        states = [small_state(seed=s) for s in range(2)]
        replies = service.handle_many(
            [
                PlanRequest.from_state(s, planner="vmr2l", migration_limit=2,
                                       greedy=False, seed=3)
                for s in states
            ]
        )
        assert all(reply.metrics["batch_size"] == 1 for reply in replies)


class TestQueuedService:
    def test_submit_micro_batches_concurrent_requests(self, registry):
        states = [small_state(seed=s) for s in range(3)]
        service = ReschedulingService(
            registry, ServiceConfig(max_batch_size=4, max_wait_ms=50.0)
        )
        with service:
            futures = [
                service.submit(
                    PlanRequest.from_state(state, planner="vmr2l", migration_limit=3)
                )
                for state in states
            ]
            replies = [future.result(timeout=120) for future in futures]
        assert all(isinstance(reply, PlanResponse) for reply in replies)
        # All three arrived within max_wait, so they shared one model forward.
        assert {reply.metrics["batch_size"] for reply in replies} == {3}
        assert all(reply.metrics["queue_ms"] >= 0.0 for reply in replies)
        assert service.stats()["batched_requests"] >= 3

    def test_submit_requires_started_service(self, registry):
        service = ReschedulingService(registry)
        with pytest.raises(RuntimeError):
            service.submit(PlanRequest.from_state(small_state()))

    def test_deadline_exceeded_in_queue(self, registry):
        service = ReschedulingService(registry, ServiceConfig(max_wait_ms=0.0))
        with service:
            # An effectively-zero deadline trips before dispatch.
            future = service.submit(
                PlanRequest.from_state(small_state(), planner="ha",
                                       deadline_ms=1e-6)
            )
            reply = future.result(timeout=60)
        assert isinstance(reply, PlanError)
        assert reply.code == "deadline_exceeded"

    def test_malformed_deadline_does_not_kill_the_worker(self, registry):
        # Regression: a non-numeric deadline_ms raised TypeError inside the
        # worker loop, killing the thread and hanging every later request.
        service = ReschedulingService(registry, ServiceConfig(max_wait_ms=0.0))
        with service:
            bad = PlanRequest.from_state(small_state(), planner="ha")
            bad.deadline_ms = "100"  # bypasses from_dict coercion
            reply = service.submit(bad).result(timeout=60)
            assert isinstance(reply, PlanError)
            # The worker must still serve the next request.
            good = service.submit(
                PlanRequest.from_state(small_state(), planner="ha", migration_limit=2)
            ).result(timeout=60)
        assert isinstance(good, PlanResponse)
