"""Pure-controller tests for the autoscaler and the brownout ladder.

These drive :class:`Autoscaler` and :class:`BrownoutController` with explicit
load samples and timestamps — no processes, no sleeps — so every hysteresis
band, cooldown and ladder transition is asserted deterministically.  The
fleet chaos suite (tests/robustness/test_autoscale_fleet.py) then only has to
show the decisions are *obeyed* by real replicas.
"""

import pytest

from repro.serve import (
    BROWNOUT_LEVEL_NAMES,
    AutoscaleConfig,
    Autoscaler,
    BrownoutConfig,
    BrownoutController,
    FleetLoad,
)


def load(active, outstanding, age_s=0.0, p95_ms=0.0):
    return FleetLoad(
        active_replicas=active,
        outstanding=outstanding,
        oldest_inflight_age_s=age_s,
        p95_ms=p95_ms,
    )


class TestAutoscaleConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(scale_up_backlog=1.0, scale_down_backlog=1.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(alpha=0.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(cooldown_up_s=-1.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(scale_up_inflight_age_s=-0.1)

    def test_manual_config_never_autoscales(self):
        scaler = Autoscaler(AutoscaleConfig.manual(1, 4))
        for tick in range(20):
            # Absurd load in both directions: neither threshold can fire.
            target = scaler.observe(load(1, 1000), now=float(tick))
            assert target == 1
            target = scaler.observe(load(4, 0), now=float(tick) + 0.5)
            assert target == 1
        assert scaler.events == []


class TestAutoscalerUp:
    def config(self, **overrides):
        defaults = dict(
            min_replicas=1,
            max_replicas=3,
            scale_up_backlog=3.0,
            scale_down_backlog=0.5,
            alpha=1.0,  # no smoothing: thresholds fire on the raw sample
            cooldown_up_s=1.0,
            cooldown_down_s=5.0,
        )
        defaults.update(overrides)
        return AutoscaleConfig(**defaults)

    def test_scales_up_one_replica_at_a_time(self):
        scaler = Autoscaler(self.config(), initial_replicas=1)
        assert scaler.observe(load(1, 10), now=0.0) == 2
        # Still overloaded but inside cooldown_up_s: no second step yet.
        assert scaler.observe(load(2, 10), now=0.5) == 2
        assert scaler.observe(load(2, 10), now=1.1) == 3
        # At max_replicas: saturates, no event recorded past the bound.
        assert scaler.observe(load(3, 30), now=3.0) == 3
        assert [e["reason"] for e in scaler.events] == ["backlog-high"] * 2
        assert [(e["from"], e["to"]) for e in scaler.events] == [(1, 2), (2, 3)]

    def test_smoothing_delays_the_trigger(self):
        scaler = Autoscaler(self.config(alpha=0.5), initial_replicas=1)
        # One spiky sample halves through the EWMA (smoothed=4 from raw 8
        # after a first sample of 0): first tick seeds at 0, second is 4.
        assert scaler.observe(load(1, 0), now=0.0) == 1
        assert scaler.observe(load(1, 8), now=1.0) == 2  # smoothed 4.0 >= 3.0
        assert scaler.smoothed == pytest.approx(4.0)

    def test_inflight_age_triggers_without_backlog(self):
        scaler = Autoscaler(
            self.config(scale_up_inflight_age_s=2.0), initial_replicas=1
        )
        # One stuck request: backlog 1 < 3 but its age crosses the bar.
        assert scaler.observe(load(1, 1, age_s=5.0), now=0.0) == 2
        assert scaler.events[0]["reason"] == "inflight-age"

    def test_p95_triggers_without_backlog(self):
        scaler = Autoscaler(self.config(scale_up_p95_ms=100.0), initial_replicas=1)
        assert scaler.observe(load(1, 1, p95_ms=250.0), now=0.0) == 2
        assert scaler.events[0]["reason"] == "p95-latency"


class TestAutoscalerDown:
    def config(self):
        return AutoscaleConfig(
            min_replicas=1,
            max_replicas=3,
            scale_up_backlog=3.0,
            scale_down_backlog=0.5,
            alpha=1.0,
            cooldown_up_s=1.0,
            cooldown_down_s=5.0,
        )

    def test_scales_down_only_after_cooldown(self):
        scaler = Autoscaler(self.config(), initial_replicas=3)
        # No prior event: cooldowns are vacuously satisfied, so the first
        # quiet tick already steps down one replica.
        assert scaler.observe(load(3, 0), now=0.0) == 2
        # Inside cooldown_down_s of that down-move: held.
        assert scaler.observe(load(2, 0), now=2.0) == 2
        assert scaler.observe(load(2, 0), now=5.5) == 1
        # At min_replicas: saturates.
        assert scaler.observe(load(1, 0), now=20.0) == 1
        assert [(e["from"], e["to"]) for e in scaler.events] == [(3, 2), (2, 1)]

    def test_scale_up_resets_the_down_cooldown(self):
        scaler = Autoscaler(self.config(), initial_replicas=2)
        assert scaler.observe(load(2, 12), now=0.0) == 3  # up at t=0
        # Quiet immediately after, but the up at t=0 holds downs until t=5.
        assert scaler.observe(load(3, 0), now=2.0) == 3
        assert scaler.observe(load(3, 0), now=4.9) == 3
        assert scaler.observe(load(3, 0), now=5.1) == 2

    def test_no_scale_down_with_queued_work(self):
        scaler = Autoscaler(self.config(), initial_replicas=2)
        # Smoothed backlog is low but more requests than replicas are
        # outstanding — killing warm capacity now would strand them.
        scaler.smoothed = 0.0
        assert scaler.observe(load(2, 3), now=100.0) == 2

    def test_hysteresis_band_holds_target(self):
        scaler = Autoscaler(self.config(), initial_replicas=2)
        # Backlog between the two thresholds: neither direction fires, ever.
        for tick in range(30):
            assert scaler.observe(load(2, 4), now=float(tick * 10)) == 2
        assert scaler.events == []

    def test_state_dict_counts_directions(self):
        scaler = Autoscaler(self.config(), initial_replicas=1)
        scaler.observe(load(1, 10), now=0.0)
        scaler.observe(load(2, 0), now=10.0)
        state = scaler.state_dict()
        assert state["scale_ups"] == 1
        assert state["scale_downs"] == 1
        assert state["target"] == 1
        assert state["min_replicas"] == 1 and state["max_replicas"] == 3
        assert len(state["events"]) == 2


class TestBrownoutConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(enter_thresholds=(1.0, 2.0))  # needs 4 rungs
        with pytest.raises(ValueError):
            BrownoutConfig(enter_thresholds=(2.0, 1.0, 4.0, 8.0))
        with pytest.raises(ValueError):
            BrownoutConfig(enter_thresholds=(0.0, 1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            BrownoutConfig(exit_fraction=1.0)
        with pytest.raises(ValueError):
            BrownoutConfig(min_dwell=0)
        with pytest.raises(ValueError):
            BrownoutConfig(reduced_deadline_ms=0.0)

    def test_level_names_cover_the_ladder(self):
        assert BROWNOUT_LEVEL_NAMES == (
            "normal",
            "cheap-inference",
            "partial-plans",
            "fallback-planner",
            "shed",
        )


class TestBrownoutLadder:
    def controller(self, **overrides):
        defaults = dict(
            enter_thresholds=(1.0, 2.0, 4.0, 8.0),
            exit_fraction=0.6,
            alpha=1.0,  # raw samples: transitions assertable per-tick
            min_dwell=2,
        )
        defaults.update(overrides)
        return BrownoutController(BrownoutConfig(**defaults))

    def test_enters_rungs_in_order(self):
        ladder = self.controller()
        assert ladder.observe(0.5, now=0.0) == 0
        assert ladder.observe(1.0, now=1.0) == 1
        assert ladder.observe(2.5, now=2.0) == 2
        assert ladder.observe(4.0, now=3.0) == 3
        assert ladder.observe(9.0, now=4.0) == 4

    def test_spike_jumps_multiple_rungs(self):
        ladder = self.controller()
        assert ladder.observe(8.5, now=0.0) == 4
        assert len(ladder.transitions) == 1
        assert ladder.transitions[0]["from"] == 0
        assert ladder.transitions[0]["to"] == 4

    def test_exit_is_one_rung_at_a_time_with_dwell(self):
        ladder = self.controller()
        ladder.observe(2.0, now=0.0)  # L2
        assert ladder.level == 2
        # Below exit (2.0 * 0.6 = 1.2) once: dwell not met, level holds.
        assert ladder.observe(0.1, now=1.0) == 2
        # Second consecutive quiet tick: one rung down, not straight to 0.
        assert ladder.observe(0.1, now=2.0) == 1
        assert ladder.observe(0.1, now=3.0) == 1
        assert ladder.observe(0.1, now=4.0) == 0

    def test_bounce_resets_the_dwell_counter(self):
        ladder = self.controller()
        ladder.observe(1.5, now=0.0)  # L1 (exit below 0.6)
        assert ladder.observe(0.1, now=1.0) == 1  # quiet x1
        assert ladder.observe(0.9, now=2.0) == 1  # bounce: counter resets
        assert ladder.observe(0.1, now=3.0) == 1  # quiet x1 again
        assert ladder.observe(0.1, now=4.0) == 0  # quiet x2: now it exits

    def test_effect_predicates_per_level(self):
        ladder = self.controller()
        expectations = {
            0: (False, False, False, False),
            1: (True, False, False, False),
            2: (True, True, False, False),
            3: (True, True, True, False),
            4: (True, True, True, True),
        }
        loads = {0: 0.0, 1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0}
        for level, flags in expectations.items():
            fresh = self.controller()
            fresh.observe(loads[level], now=0.0)
            assert fresh.level == level
            assert (
                fresh.force_cheap_inference,
                fresh.reduce_deadline,
                fresh.degrade_to_fallback,
                fresh.shedding,
            ) == flags

    def test_effective_deadline_tightens_only_at_l2(self):
        ladder = self.controller(reduced_deadline_ms=250.0)
        ladder.observe(1.0, now=0.0)  # L1
        assert ladder.effective_deadline_ms(None) is None
        assert ladder.effective_deadline_ms(1000.0) == 1000.0
        ladder.observe(2.5, now=1.0)  # L2
        assert ladder.effective_deadline_ms(None) == 250.0
        assert ladder.effective_deadline_ms(1000.0) == 250.0
        # A caller deadline tighter than the brownout one survives.
        assert ladder.effective_deadline_ms(100.0) == 100.0

    def test_state_dict_names_the_level(self):
        ladder = self.controller()
        ladder.observe(4.5, now=0.0)
        state = ladder.state_dict()
        assert state["level"] == 3
        assert state["level_name"] == "fallback-planner"
        assert state["transitions"] == 1
        assert state["recent_transitions"][0]["to"] == 3
