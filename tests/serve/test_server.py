"""Tests for the HTTP frontend (ThreadingHTTPServer JSON endpoint)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.serve import (
    PlanRequest,
    PlanResponse,
    PlanningServer,
    ReschedulingService,
    ServiceConfig,
    build_default_registry,
    response_from_dict,
)


def small_state(num_pms=5, seed=0):
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


@pytest.fixture(scope="module")
def server():
    service = ReschedulingService(
        build_default_registry(include_slow=False, seed=0),
        ServiceConfig(max_batch_size=4, max_wait_ms=1.0),
    )
    with PlanningServer(service, host="127.0.0.1", port=0) as running:
        yield running


def _post(url, payload: bytes):
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.load(response)


class TestHTTPEndpoints:
    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=30) as response:
            payload = json.load(response)
        assert payload["status"] == "ok"
        assert "requests" in payload["stats"]

    def test_planners_listing(self, server):
        with urllib.request.urlopen(server.url + "/v1/planners", timeout=30) as response:
            payload = json.load(response)
        keys = {entry["key"] for entry in payload["planners"]}
        assert {"vmr2l", "ha", "vbpp", "random"} <= keys

    def test_plan_round_trip(self, server):
        request = PlanRequest.from_state(small_state(), planner="ha", migration_limit=3)
        status, payload = _post(server.url + "/v1/plan", request.to_json().encode())
        assert status == 200
        reply = response_from_dict(payload)
        assert isinstance(reply, PlanResponse)
        assert reply.request_id == request.request_id
        assert reply.planner == "HA"
        assert reply.metrics["latency_ms"] > 0.0

    def test_plan_unknown_planner_404(self, server):
        request = PlanRequest.from_state(small_state(), planner="quantum")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/v1/plan", request.to_json().encode())
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["code"] == "unknown_planner"

    def test_plan_malformed_body_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/v1/plan", b"{broken")
        assert excinfo.value.code == 400

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v2/nothing", timeout=30)
        assert excinfo.value.code == 404

    def test_concurrent_posts_micro_batch(self, server):
        import threading

        states = [small_state(seed=s) for s in range(3)]
        replies = [None] * len(states)

        def worker(index):
            request = PlanRequest.from_state(
                states[index], planner="vmr2l", migration_limit=2
            )
            _, payload = _post(server.url + "/v1/plan", request.to_json().encode())
            replies[index] = response_from_dict(payload)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(states))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(isinstance(reply, PlanResponse) for reply in replies)
        # At least some requests should have shared a micro-batch forward
        # (timing-dependent, so only assert the mechanism reports itself).
        assert all(reply.metrics["batch_size"] >= 1 for reply in replies)
