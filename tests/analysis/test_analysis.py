"""Tests for metrics, latency, dynamics (Fig. 5) and the visualization tool (Fig. 21)."""

import numpy as np
import pytest

from repro.analysis import (
    FIVE_SECOND_LIMIT,
    achieved_fr_vs_delay,
    average_over_states,
    compare_algorithms,
    decay_series,
    find_elbow,
    format_series,
    format_table,
    latency_table,
    measure_latency,
    numa_breakdown,
    potential_fr_ratio,
    relative_gap,
    render_numa_bar,
    render_step,
    render_trace,
    rows_to_series,
    save_csv,
    save_json,
    summarize_comparison,
    time_function,
    trace_plan,
)
from repro.baselines import FilteringHeuristic, MIPRescheduler, RandomRescheduler
from repro.cluster import MigrationPlan, Migration
from repro.datasets import ClusterSpec, SnapshotGenerator


@pytest.fixture(scope="module")
def snapshot():
    return SnapshotGenerator(ClusterSpec(num_pms=6, target_utilization=0.7), seed=0).generate()


class TestMetrics:
    def test_compare_algorithms_rows(self, snapshot):
        rows = compare_algorithms(snapshot, [FilteringHeuristic()], migration_limits=[2, 4])
        assert len(rows) == 2
        assert {row.migration_limit for row in rows} == {2, 4}
        assert all(row.fragment_rate <= row.initial_fragment_rate + 1e-9 for row in rows)

    def test_rows_to_series_grouping(self, snapshot):
        rows = compare_algorithms(
            snapshot, [FilteringHeuristic(), RandomRescheduler(seed=0)], migration_limits=[2, 3]
        )
        series = rows_to_series(rows)
        assert set(series) == {"HA", "Random"}
        assert series["HA"].migration_limits == [2, 3]

    def test_average_over_states(self, snapshot):
        summary = average_over_states([snapshot, snapshot], FilteringHeuristic(), migration_limit=3)
        assert summary["num_states"] == 2
        assert summary["mean_final_objective"] <= summary["mean_initial_objective"] + 1e-9
        with pytest.raises(ValueError):
            average_over_states([], FilteringHeuristic(), 3)

    def test_potential_fr_ratio_bounds(self):
        assert potential_fr_ratio(0.5, 0.3, 0.25) == pytest.approx(0.8)
        assert potential_fr_ratio(0.5, 0.5, 0.5) == 1.0
        assert potential_fr_ratio(0.5, 0.6, 0.2) == 0.0  # clipped

    def test_relative_gap(self):
        assert relative_gap(0.2941, 0.2859) == pytest.approx(0.0287, abs=1e-3)
        assert relative_gap(0.0, 0.0) == 0.0


class TestLatency:
    def test_measure_latency(self, snapshot):
        measurement = measure_latency(FilteringHeuristic(), snapshot, migration_limit=2, repeats=2)
        assert measurement.num_runs == 2
        assert measurement.min_seconds <= measurement.mean_seconds <= measurement.max_seconds
        assert measurement.meets_limit(FIVE_SECOND_LIMIT)
        with pytest.raises(ValueError):
            measure_latency(FilteringHeuristic(), snapshot, 2, repeats=0)

    def test_latency_table(self, snapshot):
        measurement = measure_latency(FilteringHeuristic(), snapshot, migration_limit=2, repeats=1)
        rows = latency_table([measurement])
        assert rows[0]["algorithm"] == "HA"
        assert rows[0]["within_limit"] is True

    def test_time_function(self):
        out = time_function(lambda: 41 + 1)
        assert out["value"] == 42
        assert out["seconds"] >= 0.0


class TestDynamics:
    def test_achieved_fr_decays_with_delay(self, snapshot):
        plan = MIPRescheduler(time_limit_s=15).compute_plan(snapshot, 6).plan
        outcomes = achieved_fr_vs_delay(
            snapshot, plan, delays_s=[0.0, 60.0, 600.0], changes_per_minute=120.0, seed=0, num_replicas=2
        )
        assert len(outcomes) == 3
        by_delay = {o.delay_s: o for o in outcomes}
        # Zero delay applies the full plan; very long delays lose reduction.
        assert by_delay[0.0].actions_stale == 0
        assert by_delay[600.0].fr_reduction <= by_delay[0.0].fr_reduction + 1e-9
        series = decay_series(outcomes)
        assert series["delay_s"].tolist() == [0.0, 60.0, 600.0]

    def test_find_elbow(self, snapshot):
        plan = FilteringHeuristic().compute_plan(snapshot, 4).plan
        outcomes = achieved_fr_vs_delay(snapshot, plan, delays_s=[0.0, 30.0], changes_per_minute=60.0,
                                        num_replicas=1)
        elbow = find_elbow(outcomes)
        assert elbow is None or elbow in (0.0, 30.0)

    def test_invalid_replicas(self, snapshot):
        with pytest.raises(ValueError):
            achieved_fr_vs_delay(snapshot, MigrationPlan(), [0.0], num_replicas=0)


class TestVisualization:
    def test_numa_breakdown_accounts_for_all_cores(self, snapshot):
        pm_id = sorted(snapshot.pms)[0]
        breakdowns = numa_breakdown(snapshot, pm_id)
        assert len(breakdowns) == 2
        for b in breakdowns:
            allocated = sum(b.per_type_cores.values())
            assert allocated + b.free_cores == pytest.approx(b.capacity)

    def test_trace_plan_and_render(self, snapshot):
        plan = FilteringHeuristic().compute_plan(snapshot, 3).plan
        traces = trace_plan(snapshot, plan)
        assert len(traces) == len(plan)
        if traces:
            text = render_trace(traces, max_steps=2)
            assert "step 1" in text
            assert "PM" in text

    def test_trace_skips_stale_migrations(self, snapshot):
        plan = MigrationPlan([Migration(vm_id=999999, dest_pm_id=0)])
        assert trace_plan(snapshot, plan) == []

    def test_render_numa_bar_width(self, snapshot):
        breakdowns = numa_breakdown(snapshot, sorted(snapshot.pms)[0])
        bar = render_numa_bar(breakdowns[0], width=20)
        assert "[" in bar and "]" in bar
        inner = bar.split("[")[1].split("]")[0]
        assert len(inner) == 20
        with pytest.raises(ValueError):
            render_numa_bar(breakdowns[0], width=0)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="x")

    def test_format_series(self):
        text = format_series({"x": [1, 2], "y": [0.1, 0.2]})
        assert "x" in text and "y" in text

    def test_summarize_comparison(self, snapshot):
        rows = compare_algorithms(snapshot, [FilteringHeuristic(), RandomRescheduler(seed=1)], [2])
        summary = summarize_comparison(rows)
        assert len(summary) == 2
        assert summary[0]["mean_fragment_rate"] <= summary[1]["mean_fragment_rate"]

    def test_save_csv_and_json(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}]
        csv_path = save_csv(rows, tmp_path / "out.csv")
        assert csv_path.read_text().startswith("a,b")
        json_path = save_json({"arr": np.arange(3)}, tmp_path / "out.json")
        assert '"arr"' in json_path.read_text()
