"""Tests for every baseline rescheduler and the shared Rescheduler interface."""

import numpy as np
import pytest

from repro.baselines import (
    AlphaVBPP,
    DecimaRescheduler,
    FilteringHeuristic,
    MCTSRescheduler,
    MIPRescheduler,
    NeuPlanRescheduler,
    POPRescheduler,
    RandomRescheduler,
    Rescheduler,
    evaluate_plan,
    order_migrations,
)
from repro.cluster import (
    ClusterState,
    ConstraintConfig,
    PhysicalMachine,
    Placement,
    PMType,
    VirtualMachine,
    VMTypeCatalog,
)
from repro.core import ModelConfig, PPOConfig, VMR2LConfig
from repro.datasets import ClusterSpec, SnapshotGenerator

CATALOG = VMTypeCatalog.main()


def fragmented_state(num_pms=6, seed=0):
    """A small cluster with plenty of fragmentation to repair."""
    spec = ClusterSpec(num_pms=num_pms, target_utilization=0.7, best_fit_fraction=0.2)
    return SnapshotGenerator(spec, seed=seed).generate()


def tiny_state():
    """Hand-built 3-PM cluster where one migration removes all fragments."""
    pms = [PhysicalMachine(pm_id=i, pm_type=PMType("pm32", cpu=32, memory=128)) for i in range(3)]
    state = ClusterState(pms=pms, vms=[])
    state.add_vm(VirtualMachine(vm_id=0, vm_type=CATALOG.get("xlarge")), Placement(0, 0))
    state.add_vm(VirtualMachine(vm_id=1, vm_type=CATALOG.get("4xlarge")), Placement(0, 1))
    state.add_vm(VirtualMachine(vm_id=2, vm_type=CATALOG.get("4xlarge")), Placement(1, 0))
    state.add_vm(VirtualMachine(vm_id=3, vm_type=CATALOG.get("2xlarge")), Placement(1, 1))
    state.add_vm(VirtualMachine(vm_id=4, vm_type=CATALOG.get("xlarge")), Placement(2, 0))
    return state


ALL_FAST_BASELINES = [
    FilteringHeuristic(),
    AlphaVBPP(alpha=3),
    RandomRescheduler(seed=0),
    MCTSRescheduler(iterations_per_step=4, candidate_actions=4, rollout_depth=2),
    NeuPlanRescheduler(relax_factor=10, time_limit_s=5.0),
]


class TestReschedulerInterface:
    @pytest.mark.parametrize("algorithm", ALL_FAST_BASELINES, ids=lambda a: a.name)
    def test_compute_plan_contract(self, algorithm):
        state = fragmented_state()
        before = state.to_dict()
        result = algorithm.compute_plan(state, migration_limit=5)
        # The input snapshot is never mutated.
        assert state.to_dict() == before
        assert result.num_migrations <= 5
        assert result.inference_seconds >= 0.0
        assert result.algorithm == algorithm.name

    @pytest.mark.parametrize("algorithm", ALL_FAST_BASELINES, ids=lambda a: a.name)
    def test_plans_never_increase_fragment_rate_much(self, algorithm):
        state = fragmented_state()
        result = algorithm.compute_plan(state, migration_limit=5)
        evaluation = evaluate_plan(state, result)
        # Random may wander, but every plan must stay a valid FR in [0, 1].
        assert 0.0 <= evaluation.final_objective <= 1.0
        assert evaluation.num_applied + evaluation.num_skipped == evaluation.num_migrations

    def test_zero_migration_limit_is_noop(self):
        # Zero is a well-defined no-op request (used by the serving layer).
        result = FilteringHeuristic().compute_plan(fragmented_state(), migration_limit=0)
        assert result.num_migrations == 0
        assert result.inference_seconds == 0.0
        assert result.info.get("noop") is True

    def test_negative_migration_limit_rejected(self):
        with pytest.raises(ValueError):
            FilteringHeuristic().compute_plan(fragmented_state(), migration_limit=-1)

    def test_base_class_requires_implementation(self):
        with pytest.raises(NotImplementedError):
            Rescheduler().compute_plan(fragmented_state(), 3)


class TestFilteringHeuristic:
    def test_fixes_tiny_cluster(self):
        state = tiny_state()
        result = FilteringHeuristic().compute_plan(state, migration_limit=3)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective < evaluation.initial_objective

    def test_reduces_fr_on_generated_cluster(self):
        state = fragmented_state()
        result = FilteringHeuristic().compute_plan(state, migration_limit=8)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective <= evaluation.initial_objective

    def test_stops_when_no_improvement(self):
        state = tiny_state()
        result = FilteringHeuristic().compute_plan(state, migration_limit=50)
        assert result.num_migrations < 50
        assert result.info["stop_reason"] in ("no_improvement", "no_candidate")

    def test_respects_anti_affinity(self):
        state = fragmented_state()
        vm_ids = sorted(state.vms)[:4]
        for vm_id in vm_ids:
            state.vms[vm_id].anti_affinity_group = 1
        result = FilteringHeuristic().compute_plan(state, migration_limit=6)
        violations = []
        working = state.copy()
        for migration in result.plan:
            if working.can_host(migration.vm_id, migration.dest_pm_id, honor_affinity=True):
                working.migrate_vm(migration.vm_id, migration.dest_pm_id)
            else:
                violations.append(migration)
        assert not violations


class TestAlphaVBPP:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AlphaVBPP(alpha=0)
        with pytest.raises(ValueError):
            AlphaVBPP(cpu_weight=2.0)

    def test_reduces_or_preserves_fr(self):
        state = fragmented_state(seed=1)
        result = AlphaVBPP(alpha=4).compute_plan(state, migration_limit=8)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective <= evaluation.initial_objective + 1e-9

    def test_migrations_only_count_actual_moves(self):
        state = fragmented_state(seed=2)
        result = AlphaVBPP(alpha=4).compute_plan(state, migration_limit=6)
        for migration in result.plan:
            assert state.vms[migration.vm_id].pm_id != migration.dest_pm_id

    @pytest.mark.parametrize("seed", [0, 3, 7])
    @pytest.mark.parametrize("limit", [6, 10, 16])
    def test_plans_are_sequentially_applicable(self, seed, limit):
        # The packer removes all stage victims at once, so naive emission
        # produced moves only jointly feasible; the emitted plan must replay
        # one migration at a time (regression: crashed at NUMA allocate).
        state = fragmented_state(num_pms=10, seed=seed)
        result = AlphaVBPP().compute_plan(state, migration_limit=limit)
        evaluation = evaluate_plan(state, result)
        assert evaluation.num_applied + evaluation.num_skipped == evaluation.num_migrations
        assert evaluation.final_objective <= evaluation.initial_objective + 1e-9

    def test_fully_applied_plans_match_packer_state(self):
        # Ordered plans keep the packer's NUMA picks, so when nothing is
        # skipped the applied state reproduces the fragment rate the
        # algorithm optimized internally.
        state = fragmented_state(seed=1)
        result = AlphaVBPP(alpha=4).compute_plan(state, migration_limit=8)
        evaluation = evaluate_plan(state, result)
        if evaluation.num_skipped == 0:
            assert evaluation.final_objective == pytest.approx(
                result.info["final_fragment_rate"]
            )


class TestMIP:
    def test_mip_beats_or_matches_heuristic(self):
        state = fragmented_state()
        mip_eval = evaluate_plan(state, MIPRescheduler(time_limit_s=30).compute_plan(state, 8))
        ha_eval = evaluate_plan(state, FilteringHeuristic().compute_plan(state, 8))
        assert mip_eval.final_objective <= ha_eval.final_objective + 1e-6

    def test_mip_respects_migration_limit(self):
        state = fragmented_state()
        result = MIPRescheduler(time_limit_s=30).compute_plan(state, 3)
        assert result.num_migrations <= 3

    def test_mip_with_candidate_restriction(self):
        state = fragmented_state()
        candidates = sorted(state.vms)[:10]
        result = MIPRescheduler(time_limit_s=15, candidate_vms=candidates).compute_plan(state, 5)
        assert set(result.plan.vm_ids()) <= set(candidates)

    def test_mip_on_tiny_cluster_reaches_zero_fragments(self):
        state = tiny_state()
        result = MIPRescheduler(time_limit_s=15).compute_plan(state, 3)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective == pytest.approx(0.0, abs=1e-9)

    def test_mip_honors_anti_affinity(self):
        """The final assignment never co-locates conflicting VMs.

        The MIP optimizes the *final* assignment (Eq. 1-7), so it may propose
        swaps that are only executable in a particular order; applying the plan
        with affinity enforcement (production behaviour) must still never leave
        two conflicting VMs on the same PM.
        """
        from repro.cluster import apply_plan

        state = tiny_state()
        for vm_id in (0, 2, 4):
            state.vms[vm_id].anti_affinity_group = 3
        result = MIPRescheduler(time_limit_s=15).compute_plan(state, 3)
        final_state, _ = apply_plan(state, result.plan, honor_affinity=True, skip_infeasible=True)
        for pm_id in final_state.pms:
            groups = [
                final_state.vms[v].anti_affinity_group
                for v in final_state.pms[pm_id].vm_ids
                if final_state.vms[v].anti_affinity_group is not None
            ]
            assert len(groups) == len(set(groups))

    def test_order_migrations_produces_applicable_sequence(self):
        state = tiny_state()
        assignment = {0: 1, 2: 2}  # move VM0 to PM1, VM2 to PM2
        plan = order_migrations(state, assignment)
        working = state.copy()
        applied = 0
        for migration in plan:
            if working.can_host(migration.vm_id, migration.dest_pm_id, honor_affinity=False):
                working.migrate_vm(migration.vm_id, migration.dest_pm_id)
                applied += 1
        assert applied == len(plan)


class TestPOP:
    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            POPRescheduler(num_partitions=0)

    def test_pop_reduces_fr_but_not_below_full_mip(self):
        state = fragmented_state()
        pop_eval = evaluate_plan(state, POPRescheduler(num_partitions=3, time_limit_s=15).compute_plan(state, 8))
        mip_eval = evaluate_plan(state, MIPRescheduler(time_limit_s=30).compute_plan(state, 8))
        assert pop_eval.final_objective <= pop_eval.initial_objective
        assert mip_eval.final_objective <= pop_eval.final_objective + 1e-6

    def test_pop_is_faster_than_full_mip_on_same_budget(self):
        state = fragmented_state(num_pms=8, seed=3)
        pop_result = POPRescheduler(num_partitions=4, time_limit_s=20).compute_plan(state, 8)
        assert pop_result.info["partitions"]


class TestMCTS:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MCTSRescheduler(iterations_per_step=0)

    def test_mcts_improves_tiny_cluster(self):
        state = tiny_state()
        result = MCTSRescheduler(iterations_per_step=8, candidate_actions=4).compute_plan(state, 3)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective <= evaluation.initial_objective

    def test_mcts_records_simulations(self):
        state = tiny_state()
        result = MCTSRescheduler(iterations_per_step=4).compute_plan(state, 2)
        assert result.info["simulations"] >= 4


class TestNeuPlan:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NeuPlanRescheduler(prefix_fraction=1.5)
        with pytest.raises(ValueError):
            NeuPlanRescheduler(relax_factor=0)

    def test_neuplan_combines_prefix_and_mip(self):
        state = fragmented_state()
        result = NeuPlanRescheduler(prefix_fraction=0.4, relax_factor=12, time_limit_s=10).compute_plan(state, 6)
        evaluation = evaluate_plan(state, result)
        assert evaluation.final_objective <= evaluation.initial_objective
        assert result.num_migrations <= 6


class TestDecima:
    def test_decima_plans_without_training(self):
        state = fragmented_state()
        decima = DecimaRescheduler(
            config=VMR2LConfig(
                model=ModelConfig(extractor="vanilla", embed_dim=16, num_heads=2, num_blocks=1),
                ppo=PPOConfig(rollout_steps=8, minibatch_size=4, update_epochs=1),
                migration_limit=4,
            ),
            pm_subset_size=3,
            seed=0,
        )
        result = decima.compute_plan(state, migration_limit=4)
        evaluation = evaluate_plan(state, result)
        assert result.num_migrations <= 4
        assert 0.0 <= evaluation.final_objective <= 1.0

    def test_decima_subsampling_limits_mask(self):
        from repro.baselines.decima import _SubsampledEnv

        state = fragmented_state()
        env = _SubsampledEnv(
            state,
            ConstraintConfig(migration_limit=5),
            pm_subset_size=2,
            subsample_rng=np.random.default_rng(0),
        )
        env.reset()
        mask = env.pm_action_mask(0)
        assert mask.sum() <= 2

    def test_decima_rejects_tree_extractor(self):
        with pytest.raises(ValueError):
            DecimaRescheduler(config=VMR2LConfig(model=ModelConfig(extractor="sparse")))

    def test_decima_short_training_runs(self):
        state = fragmented_state(num_pms=4, seed=4)
        decima = DecimaRescheduler(
            config=VMR2LConfig(
                model=ModelConfig(extractor="vanilla", embed_dim=16, num_heads=2, num_blocks=1),
                ppo=PPOConfig(rollout_steps=8, minibatch_size=8, update_epochs=1),
                migration_limit=3,
            ),
            pm_subset_size=2,
            seed=0,
        )
        decima.train_on_states([state], total_steps=8)
        result = decima.compute_plan(state, migration_limit=3)
        assert result.num_migrations <= 3
