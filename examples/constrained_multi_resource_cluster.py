"""Scenario: a multi-resource cluster with anti-affinity and a mixed objective.

Some clusters (§5.4–5.5 of the paper) are harder than the default setting:
two PM flavors, memory-heavy VM types (CPU:memory up to 1:8), hard
anti-affinity groups for fault tolerance, and an objective that mixes the
16-core CPU fragment rate with the 64-GB memory fragment rate.

This example builds such a cluster, attaches anti-affinity groups, trains a
small VMR2L agent directly on the mixed objective and compares it against the
POP baseline, reporting both objective components.

Run with::

    python examples/constrained_multi_resource_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.baselines import POPRescheduler
from repro.cluster import ConstraintConfig, apply_plan, assign_anti_affinity_groups
from repro.core import ModelConfig, PPOConfig, RiskSeekingConfig, VMR2LAgent, VMR2LConfig
from repro.datasets import SnapshotGenerator, multi_resource_spec
from repro.env import MixedResourceObjective

MIGRATION_LIMIT = 8
LAMBDA = 0.4  # weight of the memory-fragment component in the mixed objective


def build_cluster():
    spec = multi_resource_spec(num_pms=10, target_utilization=0.72)
    generator = SnapshotGenerator(spec, seed=1)
    train_states = generator.generate_many(3)
    test_state = generator.generate()
    # Hard anti-affinity: three service groups whose members must not share a PM.
    assign_anti_affinity_groups(test_state, group_count=3, vms_per_group=2, rng=np.random.default_rng(0))
    return train_states, test_state


def main() -> None:
    train_states, test_state = build_cluster()
    objective = MixedResourceObjective(weight=LAMBDA)
    print(
        f"multi-resource cluster: {test_state.num_pms} PMs, {test_state.num_vms} VMs, "
        f"affinity ratio = {100 * test_state.affinity_ratio():.2f}%"
    )
    initial = objective.component_metrics(test_state)
    print(f"initial FR16 = {initial['fr16']:.4f}, Mem64 = {initial['mem64']:.4f}, "
          f"mixed objective (lambda={LAMBDA}) = {objective.episode_metric(test_state):.4f}")

    config = VMR2LConfig(
        model=ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32),
        ppo=PPOConfig(rollout_steps=128, minibatch_size=32, update_epochs=2, learning_rate=2.5e-3),
        risk_seeking=RiskSeekingConfig(num_trajectories=4),
        migration_limit=MIGRATION_LIMIT,
    )
    agent = VMR2LAgent(
        config,
        objective=objective,
        constraint_config=ConstraintConfig(migration_limit=MIGRATION_LIMIT),
        seed=0,
    )
    print("\ntraining VMR2L on the mixed objective (short CPU budget)...")
    agent.train_on_states(train_states, total_steps=512)

    rows = []
    for planner in (POPRescheduler(num_partitions=2, time_limit_s=10.0), agent):
        result = planner.compute_plan(test_state, MIGRATION_LIMIT)
        final_state, _ = apply_plan(test_state, result.plan, skip_infeasible=True)
        components = objective.component_metrics(final_state)
        rows.append(
            {
                "algorithm": planner.name,
                "fr16": components["fr16"],
                "mem64": components["mem64"],
                "mixed_objective": objective.episode_metric(final_state),
                "migrations": len(result.plan),
                "inference_s": result.inference_seconds,
            }
        )
    print()
    print(format_table(rows, title=f"Mixed CPU/memory objective, MNL={MIGRATION_LIMIT}, lambda={LAMBDA}"))

    # Verify the anti-affinity constraint held throughout.
    final_state, _ = apply_plan(test_state, agent.compute_plan(test_state, MIGRATION_LIMIT).plan)
    for pm_id, pm in final_state.pms.items():
        groups = [final_state.vms[v].anti_affinity_group for v in pm.vm_ids
                  if final_state.vms[v].anti_affinity_group is not None]
        assert len(groups) == len(set(groups)), f"anti-affinity violated on PM {pm_id}"
    print("\nanti-affinity constraints verified on the final placement.")


if __name__ == "__main__":
    main()
