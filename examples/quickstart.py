"""Quickstart: generate a cluster, inspect its fragmentation, and reschedule it.

This example walks through the core workflow of the library:

1. generate a synthetic cluster snapshot (a "mapping") with the same
   structural properties as the paper's Medium dataset,
2. measure its 16-core fragment rate,
3. compute rescheduling plans with the production heuristic (HA), the exact
   MIP and a (briefly trained) VMR2L agent, and
4. compare the achieved fragment rate and inference time of each.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import FilteringHeuristic, MIPRescheduler, evaluate_plan
from repro.cluster import ConstraintConfig
from repro.core import ModelConfig, PPOConfig, RiskSeekingConfig, VMR2LAgent, VMR2LConfig
from repro.datasets import ClusterSpec, SnapshotGenerator

MIGRATION_LIMIT = 8


def build_cluster():
    """A small but realistically fragmented cluster (reduce/raise num_pms freely)."""
    spec = ClusterSpec(num_pms=10, target_utilization=0.75, best_fit_fraction=0.3)
    generator = SnapshotGenerator(spec, seed=0)
    train_states = generator.generate_many(4)
    test_state = generator.generate()
    return train_states, test_state


def build_agent(train_states):
    """A compact VMR2L agent trained for a few minutes of CPU time."""
    config = VMR2LConfig(
        model=ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32),
        ppo=PPOConfig(rollout_steps=128, minibatch_size=32, update_epochs=2, learning_rate=2.5e-3),
        risk_seeking=RiskSeekingConfig(num_trajectories=4),
        migration_limit=MIGRATION_LIMIT,
    )
    agent = VMR2LAgent(config, constraint_config=ConstraintConfig(migration_limit=MIGRATION_LIMIT), seed=0)
    print("training VMR2L (a short CPU budget; raise total_steps for better policies)...")
    agent.train_on_states(train_states, total_steps=512)
    return agent


def main() -> None:
    train_states, test_state = build_cluster()
    print(
        f"generated cluster: {test_state.num_pms} PMs, {test_state.num_vms} VMs, "
        f"initial 16-core fragment rate = {test_state.fragment_rate():.4f}"
    )

    agent = build_agent(train_states)
    planners = [FilteringHeuristic(), MIPRescheduler(time_limit_s=30.0), agent]

    rows = []
    for planner in planners:
        result = planner.compute_plan(test_state, MIGRATION_LIMIT)
        evaluation = evaluate_plan(test_state, result)
        rows.append(
            {
                "algorithm": planner.name,
                "fragment_rate": evaluation.final_objective,
                "migrations": evaluation.num_applied,
                "inference_s": evaluation.inference_seconds,
            }
        )
    print()
    print(format_table(rows, title=f"Rescheduling with MNL={MIGRATION_LIMIT}"))
    print("\nTip: persist the trained agent with agent.save('vmr2l.npz') and reload it "
          "with VMR2LAgent.load(...) to skip retraining.")


if __name__ == "__main__":
    main()
