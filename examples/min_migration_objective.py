"""Scenario: minimize the number of migrations needed to reach an FR goal.

Operators often care less about squeezing out the last fragment and more about
reaching a safe fragmentation level with as few live migrations as possible
(each migration consumes network bandwidth and carries a small risk).  Section
5.5.1 of the paper supports this by swapping the reward (Eq. 10-11): a penalty
accrues for every migration until the FR goal is met.

This example trains a small agent on that objective, compares the number of
migrations it needs against the production heuristic, and uses the live
migration cost model to translate the plans into network time.

Run with::

    python examples/min_migration_objective.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import FilteringHeuristic
from repro.cluster import ConstraintConfig, LiveMigrationCostModel, apply_plan
from repro.core import ModelConfig, PPOConfig, RiskSeekingConfig, VMR2LAgent, VMR2LConfig
from repro.datasets import ClusterSpec, SnapshotGenerator
from repro.env import MigrationMinimizationObjective

MIGRATION_LIMIT = 12


def migrations_until_goal(state, plan, fr_goal):
    """Apply a plan step by step, stopping as soon as the FR goal is met."""
    working = state.copy()
    used = 0
    for migration in plan:
        if working.fragment_rate() <= fr_goal:
            break
        if not working.can_host(migration.vm_id, migration.dest_pm_id):
            continue
        working.migrate_vm(migration.vm_id, migration.dest_pm_id)
        used += 1
    return used, working


def main() -> None:
    spec = ClusterSpec(num_pms=10, target_utilization=0.78, best_fit_fraction=0.3)
    generator = SnapshotGenerator(spec, seed=5)
    train_states = generator.generate_many(4)
    state = generator.generate()
    initial_fr = state.fragment_rate()
    fr_goal = round(initial_fr * 0.6, 4)
    print(f"cluster: {state.num_pms} PMs / {state.num_vms} VMs, initial FR = {initial_fr:.4f}, "
          f"goal FR <= {fr_goal:.4f}")

    objective = MigrationMinimizationObjective(fr_goal=fr_goal)
    config = VMR2LConfig(
        model=ModelConfig(embed_dim=16, num_heads=2, num_blocks=1, feedforward_dim=32),
        ppo=PPOConfig(rollout_steps=128, minibatch_size=32, update_epochs=2, learning_rate=2.5e-3),
        risk_seeking=RiskSeekingConfig(num_trajectories=4),
        migration_limit=MIGRATION_LIMIT,
    )
    agent = VMR2LAgent(
        config, objective=objective,
        constraint_config=ConstraintConfig(migration_limit=MIGRATION_LIMIT), seed=0,
    )
    print("training VMR2L on the min-migration objective (short CPU budget)...")
    agent.train_on_states(train_states, total_steps=512)

    cost_model = LiveMigrationCostModel(network_bandwidth_gbps=25.0)
    rows = []
    for planner in (FilteringHeuristic(), agent):
        plan = planner.compute_plan(state, MIGRATION_LIMIT).plan
        used, final_state = migrations_until_goal(state, plan, fr_goal)
        cost = cost_model.plan_cost(state, plan.truncated(used), parallelism=4)
        rows.append(
            {
                "algorithm": planner.name,
                "migrations_used": used,
                "achieved_fr": final_state.fragment_rate(),
                "goal_met": final_state.fragment_rate() <= fr_goal,
                "memory_moved_gb": cost["total_memory_gb"],
                "migration_makespan_s": cost["makespan_seconds"],
            }
        )
    print()
    print(format_table(rows, title=f"Reaching FR <= {fr_goal:.4f} with as few migrations as possible"))


if __name__ == "__main__":
    main()
