"""Scenario: pick the off-peak rescheduling window and respect the latency budget.

The paper motivates VMR with two operational facts (Figs. 1 and 5): VM churn
follows a strong diurnal pattern, so rescheduling runs in the early-morning
trough; and solutions must arrive within ~5 seconds or cluster churn makes
them stale.  This example reproduces both analyses on synthetic traces:

1. build the daily arrival/exit profile and locate the off-peak window,
2. compute a near-optimal plan with the exact MIP,
3. measure how much of the plan's benefit survives if it is returned after
   increasing delays of cluster churn, and
4. report the "elbow" delay past which the plan loses most of its value.

Run with::

    python examples/offpeak_rescheduling_window.py
"""

from __future__ import annotations

from repro.analysis import (
    achieved_fr_vs_delay,
    decay_series,
    find_elbow,
    format_series,
    format_table,
)
from repro.baselines import MIPRescheduler
from repro.datasets import ClusterSpec, SnapshotGenerator, daily_arrival_exit_series, offpeak_minute

MIGRATION_LIMIT = 8
DELAYS_S = [0.0, 1.0, 5.0, 30.0, 120.0, 600.0, 1800.0]


def main() -> None:
    # 1. The diurnal churn profile and the off-peak VMR window (Fig. 1).
    series = daily_arrival_exit_series(seed=0, days=30)
    trough = offpeak_minute(series)
    rows = [
        {"metric": "peak changes per minute", "value": float(series["total"].max())},
        {"metric": "off-peak changes per minute", "value": float(series["total"].min())},
        {"metric": "off-peak minute of day", "value": f"{trough // 60:02d}:{trough % 60:02d}"},
    ]
    print(format_table(rows, title="Daily VM churn (synthetic 30-day average)"))

    # 2. A near-optimal plan on a fragmented snapshot.
    spec = ClusterSpec(num_pms=10, target_utilization=0.75, best_fit_fraction=0.3)
    state = SnapshotGenerator(spec, seed=3).generate()
    print(f"\nsnapshot: {state.num_pms} PMs / {state.num_vms} VMs, initial FR = {state.fragment_rate():.4f}")
    plan = MIPRescheduler(time_limit_s=30.0).compute_plan(state, MIGRATION_LIMIT).plan
    print(f"near-optimal plan computed with {len(plan)} migrations")

    # 3. How much of the benefit survives increasing inference delays (Fig. 5).
    outcomes = achieved_fr_vs_delay(
        state, plan, delays_s=DELAYS_S, changes_per_minute=60.0, seed=0, num_replicas=3
    )
    print()
    print(format_series(decay_series(outcomes), title="Achieved FR vs inference delay"))

    # 4. The elbow point that motivates the five-second latency budget.
    elbow = find_elbow(outcomes, tolerance=0.1)
    print(f"\nelbow point: plans delivered within ~{elbow:.0f}s retain >90% of their FR reduction; "
          "slower solvers lose value to cluster churn.")


if __name__ == "__main__":
    main()
